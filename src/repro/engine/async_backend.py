"""Async backend: many asynchronous protocol instances, one step loop.

The asynchronous analogue of :mod:`repro.engine.batch`: scenarios that
declare ``build_async_instance`` hand back a ready
:class:`~repro.asynchrony.scheduler.AsyncNetwork` plus a collector, and
this backend drives many of them *breadth-first* — delivery step 1 of
every live instance, then step 2, and so on — closing the ROADMAP open
item of driving the asynchronous scheduler behind the same
:class:`~repro.engine.backends.ExecutionBackend` seam.

Determinism is inherited, not re-implemented: every per-trial random
choice (scheduler order, private coins, oracle bits) forks from the
trial seed that :class:`~repro.engine.spec.ExperimentSpec` derives, and
each instance owns its scheduler, adversary, and ledger.  Interleaving
delivery steps of mutually independent networks cannot change any
network's delivery sequence, so async-backend results are bit-identical
to the serial path (``run_trial`` derived from the same builder) — the
same argument, and the same tests, as the batch backend.

Scenarios without an async builder fall back to serial execution trial
by trial, mirroring :class:`~repro.engine.batch.BatchBackend`.

:func:`run_wave` is the wave driver behind the dispatch plane's
unified worker entry (:func:`~repro.engine.dispatch.run_unit`, mode
``wave``), which the hybrid and distributed backends execute on their
workers: it rebuilds the scenario *by name* from the registry (so it
works under the ``spawn`` start method — and on remote hosts — which
inherit nothing from the parent) and drives one wave of trial indices
through a local breadth-first step loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .backends import ExecutionBackend, make_context, run_one_trial
from .batch import _prepare_wave
from .registry import AsyncInstance, resolve_cached
from .spec import EngineError, ExperimentSpec, TrialResult


def _failed_result(
    spec: ExperimentSpec, trial_index: int, exc: Exception
) -> TrialResult:
    """The same crash containment :func:`run_one_trial` applies."""
    return TrialResult(
        trial_index=trial_index,
        seed=spec.trial_seed(trial_index),
        metrics=(),
        ok=False,
        failure=f"{type(exc).__name__}: {exc}",
    )


class AsyncBackend(ExecutionBackend):
    """Multiplex independent trials of scheduler-driven scenarios.

    ``max_live`` bounds how many instances are resident at once (memory
    control for large sweeps), exactly as in the batch backend.
    """

    name = "async"

    def __init__(self, max_live: int = 64) -> None:
        if max_live < 1:
            raise ValueError("max_live must be >= 1")
        self.max_live = max_live

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        runner = resolve_cached(spec.runner)
        telemetry = self._begin_telemetry(spec)
        results: List[TrialResult] = []
        if runner.build_async_instance is None:
            for i in range(spec.trials):
                with telemetry.span(self.name, 1):
                    results.append(run_one_trial(spec, i))
        else:
            # One span per max_live window — the same granularity the
            # hybrid/distributed backends observe per wave unit.
            for start in range(0, spec.trials, self.max_live):
                window = range(
                    start, min(start + self.max_live, spec.trials)
                )
                with telemetry.span(self.name, len(window), mode="wave"):
                    results.extend(self.run_indices(spec, window))
        telemetry.finish()
        return results

    def run_indices(
        self, spec: ExperimentSpec, indices: Iterable[int]
    ) -> List[TrialResult]:
        """Drive the given trial indices, ``max_live`` at a time.

        The unit the hybrid backend shards: a wave of trial indices of
        one spec, multiplexed breadth-first, returned in index order.
        Requires an asynchronous scenario.  Resolution is memoised per
        process, so a pool worker driving many waves of the same spec
        resolves the scenario name exactly once.
        """
        runner = resolve_cached(spec.runner)
        if runner.build_async_instance is None:
            raise EngineError(
                f"scenario {spec.runner!r} declares no async builder"
            )
        ordered = sorted(indices)
        results: List[TrialResult] = []
        for start in range(0, len(ordered), self.max_live):
            window = ordered[start : start + self.max_live]
            instances: Dict[int, AsyncInstance] = {}
            for i in window:
                # One trial's broken construction must not kill the
                # sweep (or skew its wave-mates, which hold independent
                # networks).
                try:
                    instances[i] = runner.build_async_instance(
                        make_context(spec, i)
                    )
                except Exception as exc:
                    results.append(_failed_result(spec, i, exc))
            instances = _prepare_wave(runner, spec, instances, results)
            results.extend(self._drive_wave(spec, instances))
        results.sort(key=lambda r: r.trial_index)
        return results

    def _drive_wave(
        self, spec: ExperimentSpec, instances: Dict[int, AsyncInstance]
    ) -> List[TrialResult]:
        """Breadth-first delivery loop over one wave of live instances."""
        live = dict(instances)
        finished: Dict[int, TrialResult] = {}
        while live:
            done: List[int] = []
            for index in sorted(live):
                instance = live[index]
                network = instance.network
                try:
                    # begin() is idempotent; calling it before the step-
                    # cap check keeps a zero-step instance identical to
                    # the serial path (run() starts processes even when
                    # it delivers nothing).
                    network.begin()
                    over = (
                        network.steps >= instance.max_steps
                        or not network.advance()
                    )
                    if over:
                        finished[index] = instance.collect(
                            network.result(), instance.ctx
                        )
                        done.append(index)
                except Exception as exc:
                    finished[index] = _failed_result(spec, index, exc)
                    done.append(index)
            for index in done:
                del live[index]
        return [finished[index] for index in sorted(finished)]


def run_wave(
    spec: ExperimentSpec,
    indices: Sequence[int],
    max_live: Optional[int] = None,
) -> List[TrialResult]:
    """Wave driver: rebuild the scenario by name, drive one wave.

    This is what the dispatch plane's worker entry
    (:func:`~repro.engine.dispatch.run_unit`) executes for ``wave``
    work units — on a hybrid pool worker or a remote ``repro worker
    serve`` host alike.  ``spec`` crosses the boundary as plain data;
    the scenario is resolved from the registry *inside the worker*
    (:func:`~repro.engine.registry.get_runner` loads the built-ins on
    first lookup), so the function is start-method and host agnostic —
    ``spawn`` workers, which inherit no parent state, run it
    identically to ``fork`` workers.  Trial seeds derive from the spec
    alone, so the wave's results are bit-identical to the serial path
    regardless of which worker runs which wave.

    ``max_live`` bounds resident instances within the wave; ``None``
    multiplexes the whole wave at once.
    """
    live = max_live if max_live is not None else max(1, len(indices))
    return AsyncBackend(max_live=live).run_indices(spec, indices)
