"""Repository-level pytest configuration.

Defines the ``--engine-backend`` option here (rather than in
``benchmarks/conftest.py``) because pytest only honours
``pytest_addoption`` from conftests available at startup — the repo
root's conftest is loaded for every invocation.

Note on collection: the benchmark files are named ``bench_*.py``, which
the default ``python_files = test_*.py`` pattern does *not* match, so
tier-1 (plain ``pytest``) collects ``tests/`` only and the benchmark
battery is invoked with explicit file arguments (explicit paths bypass
the filename pattern):

    pytest benchmarks/bench_*.py --engine-backend process
    pytest benchmarks/bench_*.py --engine-backend batch

The option flips every engine-ported benchmark between execution
backends without editing files.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine-backend",
        action="store",
        default="serial",
        choices=("serial", "process", "batch", "async", "hybrid"),
        help=(
            "repro.engine execution backend used by the engine-ported "
            "benchmarks (default: serial)"
        ),
    )
    parser.addoption(
        "--engine-workers",
        action="store",
        type=int,
        default=None,
        help="worker count for the process backend (default: cpu count)",
    )
