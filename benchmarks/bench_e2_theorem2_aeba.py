"""E2 — Theorem 2: almost-everywhere BA agreement quality and cost.

The theorem promises (1 - 1/log n) of good processors agree, in
O(log^{4+delta} n / log log n) time and O~(n^{4/delta}) bits/processor.
We run the tournament at increasing n and adversary strength and report
the agreement fraction against the 1 - 1/log n line, the measured
bits/processor, and the coin-round quality feeding the root agreement.
"""

import math

import pytest

from conftest import print_table
from repro.adversary.adaptive import BinStuffingAdversary, TournamentAdversary
from repro.core.almost_everywhere import run_almost_everywhere_ba
from repro.core.parameters import ProtocolParameters


def test_e2_theorem2_aeba(benchmark, capsys):
    rows = []
    for n, frac in ((27, 0.0), (27, 0.10), (27, 0.15), (81, 0.0), (81, 0.10)):
        budget = int(frac * n)
        adversary = BinStuffingAdversary(n, budget=budget, seed=51)
        result = run_almost_everywhere_ba(
            n, [p % 2 for p in range(n)], adversary=adversary, seed=52
        )
        target = 1 - 1 / math.log2(n)
        good = [p for p in range(n) if p not in result.corrupted]
        rows.append(
            (
                n,
                f"{frac:.0%}",
                f"{result.agreement_fraction():.3f}",
                f"{target:.3f}",
                f"{result.good_coin_rounds}/{result.coin_rounds}",
                f"{result.ledger.max_bits_per_processor(include=good):,}",
                result.is_valid(),
            )
        )
    benchmark.pedantic(
        lambda: run_almost_everywhere_ba(
            27, [1] * 27, adversary=TournamentAdversary(27, 0), seed=53
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E2 almost-everywhere BA (Algorithm 2 tournament)",
        ["n", "adversary", "agreement", "1-1/log n", "good coins",
         "bits/proc", "valid"],
        rows,
        note=(
            "Theorem 2 shape: agreement above the 1-1/log n line at "
            "moderate corruption; committee-size variance (k1 ~ log n "
            "instead of log^3 n) erodes it near the 1/3 bound — see "
            "DESIGN.md §3."
        ),
    )
