"""E3 — Theorems 3 and 5: AEBA with unreliable global coins.

Sweeps (a) the adversary fraction toward the 1/3 bound and (b) the
fraction of coin rounds that are genuine, locating the agreement cliff
Theorem 5 predicts: with r good coin rounds the failure probability is
about 2^-r + e^{-Cn}, so agreement holds until good coins run out or the
corruption passes 1/3.
"""

import random

import pytest

from conftest import print_table
from repro.adversary.behaviors import AntiMajorityBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.core.coins import unreliable_coin_source
from repro.core.unreliable_coin_ba import run_unreliable_coin_ba

N = 150
ROUNDS = 12


def _run(adv_fraction, good_coin_fraction, seed):
    rng = random.Random(seed)
    good_rounds = sorted(
        rng.sample(range(ROUNDS), int(good_coin_fraction * ROUNDS))
    )
    source = unreliable_coin_source(
        N, ROUNDS, good_rounds, confused_fraction=0.05, rng=rng
    )
    targets = set(rng.sample(range(N), int(adv_fraction * N)))
    adversary = StaticByzantineAdversary(
        N, targets, AntiMajorityBehavior(), seed=seed
    )
    result = run_unreliable_coin_ba(
        N, [p % 2 for p in range(N)], source, adversary=adversary,
        seed=seed + 1,
    )
    return result


def test_e3_unreliable_coins(benchmark, capsys):
    rows = []
    for adv_fraction in (0.0, 0.15, 0.30):
        for coin_fraction in (1.0, 0.5, 0.25, 0.0):
            fractions = []
            for seed in (61, 62, 63):
                result = _run(adv_fraction, coin_fraction, seed)
                fractions.append(result.agreement_fraction())
            mean = sum(fractions) / len(fractions)
            rows.append(
                (
                    f"{adv_fraction:.0%}",
                    f"{coin_fraction:.0%}",
                    f"{mean:.3f}",
                    f"{min(fractions):.3f}",
                )
            )
    benchmark.pedantic(lambda: _run(0.15, 0.5, 64), rounds=1, iterations=1)
    print_table(
        capsys,
        "E3 Algorithm 5: agreement vs adversary and coin quality (n=150)",
        ["adversary", "good coins", "agreement (mean)", "agreement (min)"],
        rows,
        note=(
            "Theorem 5 shape: with any real share of good coin rounds, "
            "all but O(n/log n) agree; with zero good coins the split "
            "persists; past 1/3 corruption nothing helps."
        ),
    )

    # Validity spot-check: unanimous inputs survive the worst row.
    rng = random.Random(65)
    source = unreliable_coin_source(N, ROUNDS, [5, 9], 0.05, rng)
    targets = set(rng.sample(range(N), int(0.30 * N)))
    adversary = StaticByzantineAdversary(
        N, targets, AntiMajorityBehavior(), seed=66
    )
    result = run_unreliable_coin_ba(
        N, [1] * N, source, adversary=adversary, seed=67
    )
    assert result.agreed_bit() == 1
