"""E23 — micro-benchmark: memoised field inverses on the hot path.

Lagrange interpolation (reconstruction, Berlekamp-Welch decoding) keeps
inverting the same small coordinate differences ``x_i - x_j``; before
this cache every call recomputed ``pow(a, p-2, p)``.  This bench times
repeated inversion of a committee-sized working set with a cold field
versus a warmed one, and checks the cache answers stay exact.

Wall-clock ratios on shared CI boxes are noisy, so the assertion is a
generous floor (the measured advantage is typically 5-20x); the exact
per-element agreement with ``pow`` is asserted unconditionally.
"""

import time

import pytest

from conftest import print_table
from repro.crypto.field import MERSENNE_31, PrimeField

#: Distinct denominators a committee-sized interpolation touches.
WORKING_SET = 64
#: Repetitions across the working set (hot-path shape: heavy reuse).
REPEATS = 400


def _time_inversions(field):
    start = time.perf_counter()
    total = 0
    for _ in range(REPEATS):
        for a in range(1, WORKING_SET + 1):
            total ^= field.inv(a)
    return time.perf_counter() - start, total


def test_e23_inverse_cache_speedup(benchmark, capsys):
    # Baseline: the exact arithmetic inv() runs on a cache miss, with no
    # field-construction overhead — so the ratio isolates memoisation.
    start = time.perf_counter()
    total_uncached = 0
    for _ in range(REPEATS):
        for a in range(1, WORKING_SET + 1):
            total_uncached ^= pow(a, MERSENNE_31 - 2, MERSENNE_31)
    uncached_s = time.perf_counter() - start

    warm = PrimeField(MERSENNE_31)
    warm.precompute_inverses(WORKING_SET)
    cached_s, total_cached = _time_inversions(warm)

    assert total_cached == total_uncached  # exactness, not just speed
    for a in range(1, WORKING_SET + 1):
        assert warm.inv(a) == pow(a, MERSENNE_31 - 2, MERSENNE_31)
        assert warm.mul(a, warm.inv(a)) == 1

    speedup = uncached_s / cached_s if cached_s else float("inf")
    benchmark.pedantic(
        lambda: _time_inversions(warm), rounds=1, iterations=1
    )
    print_table(
        capsys,
        f"E23 field inverse cache ({WORKING_SET} distinct elements x "
        f"{REPEATS} repeats, p = 2^31 - 1)",
        ["path", "wall clock", "speedup"],
        [
            ("pow(a, p-2, p) every call", f"{uncached_s * 1e3:.1f}ms",
             "1.0x"),
            ("memoised inv()", f"{cached_s * 1e3:.1f}ms",
             f"{speedup:.1f}x"),
        ],
        note=(
            "Interpolation re-inverts the same committee coordinate "
            "differences; memoisation turns each repeat into a dict hit."
        ),
    )
    assert speedup >= 1.5, (
        f"inverse cache should beat repeated pow; measured {speedup:.2f}x"
    )


def test_e23_cache_bound_and_exactness():
    """The cache never grows past its bound and never goes stale-wrong."""
    field = PrimeField(257)
    for a in range(1, 257):
        assert field.mul(a, field.inv(a)) == 1
    # 256 distinct inverses fit comfortably under the bound.
    assert len(field._inv_cache) <= field.INV_CACHE_MAX
    field.precompute_inverses(10**9)  # clamped to p - 1, no blow-up
    assert len(field._inv_cache) <= 256


def test_e23_batched_denominator_inversion(benchmark, capsys):
    """Companion note: Lagrange denominators via one batched inversion.

    ``lagrange_interpolate_at`` used to invert each of its k
    denominators separately (k ``pow`` calls on a cold cache); it now
    routes them through ``batch_inverse`` — Montgomery's trick, one
    ``pow`` plus 3(k-1) multiplications — as do the cached
    ``InterpPlan`` weights.  This bench prices that substitution on a
    committee-sized denominator vector.
    """
    from repro.crypto.field import PrimeField
    from repro.crypto.polynomial import batch_inverse

    k = 64
    repeats = 200
    field = PrimeField(MERSENNE_31)
    # Committee-shaped denominators: products of coordinate differences.
    values = [((i * 37 + 11) % (MERSENNE_31 - 1)) + 1 for i in range(k)]

    start = time.perf_counter()
    total_pow = 0
    for _ in range(repeats):
        for v in values:
            total_pow ^= pow(v, MERSENNE_31 - 2, MERSENNE_31)
    per_pow_s = time.perf_counter() - start

    start = time.perf_counter()
    total_batch = 0
    for _ in range(repeats):
        for inv in batch_inverse(field, values):
            total_batch ^= inv
    batched_s = time.perf_counter() - start

    assert total_batch == total_pow  # exactness, not just speed
    speedup = per_pow_s / batched_s if batched_s else float("inf")
    benchmark.pedantic(
        lambda: batch_inverse(field, values), rounds=1, iterations=1
    )
    print_table(
        capsys,
        f"E23b Lagrange denominators: {k} inversions x {repeats} repeats",
        ["path", "wall clock", "speedup"],
        [
            (f"{k} independent pow calls", f"{per_pow_s * 1e3:.1f}ms",
             "1.0x"),
            ("batch_inverse (1 pow + 3(k-1) mul)",
             f"{batched_s * 1e3:.1f}ms", f"{speedup:.1f}x"),
        ],
        note=(
            "The uncached path of lagrange_interpolate_at now pays one "
            "pow per call instead of k; InterpPlan pays it once per "
            "cached grid."
        ),
    )
    assert speedup >= 1.5, (
        f"batched inversion should beat per-denominator pow; "
        f"measured {speedup:.2f}x"
    )
