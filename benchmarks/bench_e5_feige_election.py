"""E5 — Lemma 4 (Feige's lightest bin) + the array-vs-processor ablation.

Series 1 sweeps rushing adversary strategies over the bin choices and
shows the winner set stays representative (good fraction within 1/log n
of the population), matching Lemma 4's bound.

Series 2 is the design ablation DESIGN.md calls out: electing
*processors* lets an adaptive adversary corrupt the winners after the
election (the classic attack that kills [17] under adaptivity), while
electing *arrays* — whose randomness is committed before winners are
known — leaves the adversary's takeover worthless.
"""

import math
import random

import pytest

from conftest import print_table
from repro.adversary.adaptive import GreedyElectionAdversary
from repro.core.almost_everywhere import run_almost_everywhere_ba
from repro.core.election import (
    good_winner_fraction,
    lemma4_bound,
    simulate_election_against_adversary,
)
from repro.core.parameters import ProtocolParameters


def test_e5_feige_strategies(benchmark, capsys):
    rng = random.Random(81)
    num_good, num_bad, num_bins = 400, 200, 40
    rows = []
    for strategy in ("random", "stuff_lightest", "balance", "avoid"):
        fractions = []
        for _ in range(30):
            result = simulate_election_against_adversary(
                num_good, num_bad, num_bins, strategy, rng
            )
            fractions.append(
                good_winner_fraction(result, set(range(num_good)))
            )
        mean = sum(fractions) / len(fractions)
        rows.append(
            (
                strategy,
                f"{mean:.3f}",
                f"{min(fractions):.3f}",
                f"{num_good / (num_good + num_bad):.3f}",
            )
        )
    benchmark.pedantic(
        lambda: simulate_election_against_adversary(
            num_good, num_bad, num_bins, "stuff_lightest", rng
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E5a lightest-bin elections vs rushing adversaries "
        f"(r={num_good + num_bad}, bins={num_bins}, 30 trials)",
        ["strategy", "good winners (mean)", "(min)", "population good"],
        rows,
        note=(
            f"Lemma 4: under-representation probability <= "
            f"{lemma4_bound(num_good, num_bins):.2e}; every strategy "
            "leaves the winner set representative."
        ),
    )


def test_e5_array_vs_processor_election(benchmark, capsys):
    """The adaptive-adversary ablation."""
    n = 27
    params = ProtocolParameters.simulation(n)
    budget = params.corruption_budget

    # Array election (the paper): corrupt winners after each election.
    adversary = GreedyElectionAdversary(n, budget=budget, seed=82)
    result = run_almost_everywhere_ba(
        n, [1] * n, adversary=adversary, seed=83
    )
    array_rows = [
        (
            ls.level,
            f"{ls.good_candidate_fraction:.2f}",
            f"{ls.good_winner_fraction:.2f}",
            len(result.corrupted),
        )
        for ls in result.level_stats
    ]

    # Processor election (the strawman): the winner IS the resource, so
    # corrupting it after the election corrupts the elected entity.  We
    # model it by re-scoring the same run counting later-corrupted owners
    # as bad.
    strawman_rows = []
    for ls, row in zip(result.level_stats, array_rows):
        # Under processor-election every corrupted winner is a bad winner.
        strawman_rows.append((ls.level, row[1], "0.00 (winners corrupted)"))

    benchmark.pedantic(
        lambda: run_almost_everywhere_ba(
            n, [1] * n,
            adversary=GreedyElectionAdversary(n, budget=budget, seed=84),
            seed=85,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E5b ablation: electing arrays vs electing processors "
        f"(greedy adaptive adversary, budget {budget})",
        ["level", "good candidates", "good winners (arrays)", "corrupted"],
        array_rows,
        note=(
            "Arrays stay 100% good: their randomness was committed and "
            "erased before winners were known.  A processor-election "
            "would read 0% — the adversary corrupts exactly the winner "
            "set each level."
        ),
    )
    for ls in result.level_stats:
        assert ls.good_winner_fraction == 1.0
    assert len(result.corrupted) > 0
