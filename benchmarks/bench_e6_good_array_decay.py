"""E6 — Lemma 6: the good-array fraction decays boundedly per level.

The lemma: at least 2/3 - 7*level/log n of winning arrays are good at
every level.  We instrument the tournament per level under bin-stuffing
adversaries of increasing strength and print measured fraction vs the
analytic floor.
"""

import math

import pytest

from conftest import print_table
from repro.adversary.adaptive import BinStuffingAdversary
from repro.analysis.bounds import lemma6_good_array_bound
from repro.core.almost_everywhere import run_almost_everywhere_ba


def test_e6_good_array_decay(benchmark, capsys):
    n = 81
    rows = []
    for frac in (0.05, 0.12):
        budget = int(frac * n)
        adversary = BinStuffingAdversary(n, budget=budget, seed=91)
        result = run_almost_everywhere_ba(
            n, [p % 2 for p in range(n)], adversary=adversary, seed=92
        )
        initial_good = 1 - budget / n
        for ls in result.level_stats:
            rows.append(
                (
                    f"{frac:.0%}",
                    ls.level,
                    f"{ls.good_candidate_fraction:.3f}",
                    f"{ls.good_winner_fraction:.3f}",
                    f"{initial_good:.3f}",
                    f"{lemma6_good_array_bound(ls.level, n):.3f}",
                )
            )
    benchmark.pedantic(
        lambda: run_almost_everywhere_ba(
            27, [1] * 27,
            adversary=BinStuffingAdversary(27, budget=2, seed=93),
            seed=94,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E6 good winning-array fraction per level (n={n})",
        ["adversary", "level", "good candidates", "good winners",
         "initial good", "Lemma 6 floor"],
        rows,
        note=(
            "Lemma 6 shape: per-level loss is bounded (no collapse); the "
            "measured fraction tracks the initial good fraction far above "
            "the asymptotic floor."
        ),
    )
