"""E22 (extension) — repeated agreement: amortizing the tournament.

The intro's replication quotes ([22], [10]) are about *logs*, not single
decisions: a replica set agrees once per slot.  The expensive phase of
the Theorem 1 pipeline — the Algorithm 2 tournament — is input-
independent, and Section 3.5 already extends it to emit arbitrarily many
coin words.  E22 measures the consequence:

* E22a: amortized max-bits/processor/slot of one shared tournament plus
  per-slot (Algorithm 5 + Algorithm 3) vs naively re-running the full
  pipeline every slot — the amortized curve decays toward the marginal
  cost as the log grows.
* E22b: marginal per-slot cost vs the quadratic Phase King baseline per
  slot, at growing n — the per-slot comparison the intro's systems
  complaints are actually about.
* E22c: correctness under attack — every slot commits, stays valid and
  reaches everyone with the tournament's corrupted set re-attacking each
  slot (equivocation in Algorithm 5, forged responses in Algorithm 3).
"""

import pytest

from conftest import print_table
from repro.adversary.adaptive import TournamentAdversary
from repro.baselines.phase_king import run_phase_king
from repro.core.repeated_agreement import run_replicated_log


def test_e22_amortization_curve(benchmark, capsys):
    """E22a: amortized bits/processor/slot as the log grows."""
    n = 27
    rows = []
    single = run_replicated_log(n, [[1] * n], seed=71)
    naive_per_slot = single.tournament_max_bits() + single.slot_max_bits(0)
    for num_slots in (1, 2, 4, 8):
        slots = [[(i + p) % 2 for p in range(n)] for i in range(num_slots)]
        result = run_replicated_log(n, slots, seed=71)
        amortized = result.amortized_max_bits_per_slot()
        rows.append(
            (
                num_slots,
                f"{amortized:,.0f}",
                f"{naive_per_slot:,.0f}",
                f"{naive_per_slot / amortized:.1f}x",
                result.success(),
            )
        )
    benchmark.pedantic(
        lambda: run_replicated_log(n, [[1] * n, [0] * n], seed=72),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E22a amortization curve (n={n})",
        ["log slots", "amortized bits/proc/slot", "full pipeline/slot",
         "advantage", "all slots ok"],
        rows,
        note=(
            "One tournament funds the whole log (Section 3.5 emits as "
            "many coin words as needed); per-slot marginal cost is only "
            "Algorithm 5 + Algorithm 3, so the amortized curve decays "
            "toward it as slots grow."
        ),
    )


def test_e22_marginal_vs_phase_king(benchmark, capsys):
    """E22b: per-slot marginal cost vs the quadratic baseline."""
    rows = []
    for n in (27, 54, 81):
        result = run_replicated_log(
            n, [[(i + p) % 2 for p in range(n)] for i in range(2)],
            seed=73,
        )
        marginal = max(
            result.slot_max_bits(i) for i in range(len(result.slots))
        )
        pk = run_phase_king(n, [p % 2 for p in range(n)])
        pk_bits = pk.ledger.max_bits_per_processor()
        rows.append(
            (
                n,
                f"{marginal:,}",
                f"{pk_bits:,}",
                f"{pk_bits / marginal:.1f}x",
            )
        )
    benchmark.pedantic(
        lambda: run_phase_king(27, [p % 2 for p in range(27)]),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E22b marginal slot cost vs Phase King per slot",
        ["n", "this paper (marginal)", "Phase King", "advantage"],
        rows,
        note=(
            "Once the tournament is sunk, each extra agreement costs "
            "O(k log^2 n) + O~(sqrt n) bits/processor against the "
            "baseline's Theta(n) bits/processor per slot (Theta(n^2) "
            "total) — and the gap widens with n."
        ),
    )


def test_e22_log_under_attack(benchmark, capsys):
    """E22c: multi-slot correctness with the corrupted set re-attacking."""
    n = 27
    rows = []
    for budget in (0, 2):
        adversary = TournamentAdversary(n, budget=budget, seed=75)
        slots = [[1] * n, [0] * n, [p % 2 for p in range(n)]]
        result = run_replicated_log(
            n, slots, tournament_adversary=adversary, seed=76
        )
        rows.append(
            (
                budget,
                result.bits(),
                result.success(),
                result.all_valid(),
            )
        )
    benchmark.pedantic(
        lambda: run_replicated_log(
            27,
            [[1] * 27, [0] * 27],
            tournament_adversary=TournamentAdversary(27, budget=2, seed=77),
            seed=78,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E22c three-slot log under adaptive corruption (n=27)",
        ["corruptions", "committed bits", "everyone decided", "all valid"],
        rows,
        note=(
            "The tournament's corrupted set equivocates inside every "
            "slot's Algorithm 5 run and forges responses in every "
            "Algorithm 3 push; unanimous slots keep their bit, the split "
            "slot commits a good processor's proposal."
        ),
    )
