"""E17 — ablation: what verifiable secret sharing would have cost.

Section 3.1 of the paper assumes a plain, *non-verifiable* (n, t+1)
threshold scheme and relies on committee honest-majorities plus
Berlekamp-Welch-robust reconstruction instead of dealer verification.
This bench measures the road not taken: BGW-style bivariate VSS at the
paper's committee sizes.

* E17a — per-dealing cost: share bits and verification messages,
  bivariate VSS vs plain Shamir, as the committee grows.
* E17b — what each buys: a forged-row attack that plain Shamir absorbs
  via majority/BW decoding and VSS detects explicitly; both reconstruct,
  but VSS also *names* the cheaters.
"""

import random

import pytest

from conftest import print_table
from repro.crypto.bivariate import BivariateRow, BivariateScheme
from repro.crypto.shamir import ShamirScheme, paper_threshold


def test_e17a_vss_cost_vs_shamir(benchmark, capsys):
    rows = []
    for k in (8, 16, 32, 64):
        threshold = paper_threshold(k)
        vss = BivariateScheme(n_players=k, threshold=threshold)
        shamir = ShamirScheme(n_players=k, threshold=threshold)
        rows.append(
            (
                k,
                shamir.share_bits(),
                vss.row_bits(),
                f"{vss.overhead_vs_shamir():.0f}x",
                0,
                vss.verification_messages(),
            )
        )
    benchmark.pedantic(
        lambda: BivariateScheme(
            n_players=16, threshold=paper_threshold(16)
        ).deal(1, random.Random(0)),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E17a per-dealing cost: plain Shamir (the paper) vs bivariate VSS",
        ["committee k", "Shamir share bits", "VSS row bits", "blow-up",
         "Shamir verify msgs", "VSS verify msgs"],
        rows,
        note=(
            "VSS shares are k+1 field elements (vs 1) and add k(k-1) "
            "pairwise echo messages per dealing. At the paper's share "
            "volume (every block re-shared at every level) this overhead "
            "multiplies straight into the d_m^l term of Lemma 5 -- the "
            "design reason Section 3.1 assumes a non-verifiable scheme."
        ),
    )


def test_e17b_detection_vs_robustness(benchmark, capsys):
    k, forged = 16, 3
    threshold = paper_threshold(k)
    vss = BivariateScheme(n_players=k, threshold=threshold)
    shamir = ShamirScheme(n_players=k, threshold=threshold)
    rng = random.Random(12)
    secret = 987654

    vss_rows = vss.deal(secret, rng)
    shamir_shares = shamir.deal(secret, rng)
    for i in range(forged):
        vss_rows[i] = BivariateRow(
            x=vss_rows[i].x,
            values=tuple(v ^ 0b1011 for v in vss_rows[i].values),
        )
        shamir_shares[i] = type(shamir_shares[i])(
            x=shamir_shares[i].x, value=shamir_shares[i].value ^ 0b1011
        )

    vss_secret, discarded = vss.reconstruct_with_complaints(vss_rows)
    shamir_secret = shamir.reconstruct_majority(shamir_shares)

    rows = [
        ("plain Shamir + majority decode", shamir_secret == secret,
         "no", "-"),
        ("bivariate VSS + complaints", vss_secret == secret,
         "yes", sorted(discarded)),
    ]
    benchmark.pedantic(
        lambda: vss.reconstruct_with_complaints(vss_rows),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E17b forged-share recovery (k={k}, {forged} forged)",
        ["scheme", "secret recovered", "cheaters identified", "named"],
        rows,
        note=(
            "Both recover the secret; only VSS names the forgers. The "
            "paper's protocol never needs the names -- a bad committee is "
            "written off wholesale (Definition 3), so the cheaper scheme "
            "wins."
        ),
    )
    assert vss_secret == secret
    assert shamir_secret == secret
    assert discarded == {vss_rows[i].x for i in range(forged)}
