"""E8 — Lemma 2: averaging-sampler quality vs degree.

Lemma 2 guarantees (theta, delta) samplers of degree d = O((s/r+1) log^3 n)
exist; the probabilistic construction is what every processor derives
from the common seed.  We measure the failure fraction (inputs whose
committee over-represents a bad set by more than theta) as the degree
grows, for random and for greedy-adversarial bad sets, and the
committee-health statistic the protocol actually consumes (fraction of
bad committees at the 2/3+eps/2 threshold).

Each degree point is one ``sampler-quality`` :class:`ExperimentSpec`
executed through :mod:`repro.engine` — flip the backend suite-wide with
``--engine-backend``.
"""

import pytest

from conftest import print_table
from repro.engine import Engine, ExperimentSpec
from repro.samplers.sampler import sampler_existence_bound

R, S = 100, 300
THETA = 0.15
BAD_FRACTION = 0.25


def _spec(degree, seed=102, trials=1):
    return ExperimentSpec(
        runner="sampler-quality",
        n=S,
        trials=trials,
        seed=seed,
        params={
            "r": R,
            "s": S,
            "degree": degree,
            "theta": THETA,
            "bad_fraction": BAD_FRACTION,
            "inner_trials": 15,
        },
    )


def test_e8_sampler_quality(benchmark, capsys, engine):
    rows = []
    greedy_by_degree = {}
    for d in (4, 8, 16, 32, 64):
        result = engine.run(_spec(d))
        random_delta = result.summary("delta_random").mean
        greedy_delta = result.summary("delta_greedy").mean
        bad_committees = result.summary("bad_committees").mean
        greedy_by_degree[d] = greedy_delta
        exists = sampler_existence_bound(R, S, d, THETA, 1 / 8)
        rows.append(
            (
                d,
                f"{random_delta:.3f}",
                f"{greedy_delta:.3f}",
                f"{bad_committees:.3f}",
                "yes" if exists else "no",
            )
        )
    benchmark.pedantic(
        lambda: Engine("serial").run(_spec(16, seed=103)),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E8 sampler quality vs degree (r={R}, s={S}, theta={THETA}, "
        f"bad set {BAD_FRACTION:.0%})",
        ["degree d", "delta (random bad)", "delta (greedy bad)",
         "bad committees", "Lemma 2 bound met"],
        rows,
        note=(
            "Lemma 2 shape: the failure fraction collapses as d grows, "
            "for random AND greedy (degree-targeting) bad sets; the "
            "greedy edge shrinks with degree — at the paper's log^3 n "
            "degrees the sampler denies the adaptive adversary the "
            "committee-stacking lever."
        ),
    )
    # The largest degree must dominate the smallest.
    assert greedy_by_degree[64] <= greedy_by_degree[4]
