"""E8 — Lemma 2: averaging-sampler quality vs degree.

Lemma 2 guarantees (theta, delta) samplers of degree d = O((s/r+1) log^3 n)
exist; the probabilistic construction is what every processor derives
from the common seed.  We measure the failure fraction (inputs whose
committee over-represents a bad set by more than theta) as the degree
grows, for random and for greedy-adversarial bad sets, and the
committee-health statistic the protocol actually consumes (fraction of
bad committees at the 2/3+eps/2 threshold).
"""

import random

import pytest

from conftest import print_table
from repro.samplers.quality import (
    adversarial_bad_set,
    estimate_failure_fraction,
    fraction_of_bad_committees,
    measure_against_bad_set,
)
from repro.samplers.sampler import Sampler, sampler_existence_bound

R, S = 100, 300
THETA = 0.15
BAD_FRACTION = 0.25


def test_e8_sampler_quality(benchmark, capsys):
    rng = random.Random(101)
    rows = []
    for d in (4, 8, 16, 32, 64):
        sampler = Sampler.random(R, S, d, random.Random(102))
        random_delta = estimate_failure_fraction(
            sampler, int(BAD_FRACTION * S), THETA, trials=15, rng=rng
        )
        greedy = adversarial_bad_set(sampler, int(BAD_FRACTION * S))
        greedy_delta = measure_against_bad_set(
            sampler, greedy, THETA
        ).delta_measured
        bad_committees = fraction_of_bad_committees(
            sampler, greedy, good_threshold=2 / 3
        )
        exists = sampler_existence_bound(R, S, d, THETA, 1 / 8)
        rows.append(
            (
                d,
                f"{random_delta:.3f}",
                f"{greedy_delta:.3f}",
                f"{bad_committees:.3f}",
                "yes" if exists else "no",
            )
        )
    benchmark.pedantic(
        lambda: Sampler.random(R, S, 16, random.Random(103)),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E8 sampler quality vs degree (r={R}, s={S}, theta={THETA}, "
        f"bad set {BAD_FRACTION:.0%})",
        ["degree d", "delta (random bad)", "delta (greedy bad)",
         "bad committees", "Lemma 2 bound met"],
        rows,
        note=(
            "Lemma 2 shape: the failure fraction collapses as d grows, "
            "for random AND greedy (degree-targeting) bad sets; the "
            "greedy edge shrinks with degree — at the paper's log^3 n "
            "degrees the sampler denies the adaptive adversary the "
            "committee-stacking lever."
        ),
    )
    # The largest degree must dominate the smallest.
    first = measure_against_bad_set(
        Sampler.random(R, S, 4, random.Random(102)),
        adversarial_bad_set(
            Sampler.random(R, S, 4, random.Random(102)), int(0.25 * S)
        ),
        THETA,
    ).delta_measured
    last = measure_against_bad_set(
        Sampler.random(R, S, 64, random.Random(102)),
        adversarial_bad_set(
            Sampler.random(R, S, 64, random.Random(102)), int(0.25 * S)
        ),
        THETA,
    ).delta_measured
    assert last <= first
