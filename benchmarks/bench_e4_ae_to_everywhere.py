"""E4 — Theorem 4, Lemmas 7-10: almost-everywhere to everywhere.

Three series:

* per-loop success: fraction of good processors decided after each loop
  (Lemma 7's constant per-loop progress, Lemma 10's repetition ladder);
* bits per processor vs n: the O~(sqrt(n)) growth that dominates
  Theorem 1;
* the request-fanout ablation: Lemma 8's Chernoff cliff as the 'a' in
  a·log n shrinks.
"""

import math

import pytest

from conftest import print_table
from repro.core.ae_to_everywhere import (
    FakeResponderAdversary,
    run_ae_to_everywhere,
)
from repro.core.parameters import ProtocolParameters

MESSAGE = 7


def _knowledgeable(n, exclude=()):
    count = int(0.67 * n)
    pool = [p for p in range(n) if p not in exclude]
    return set(pool[:count])


def test_e4_ae_to_everywhere(benchmark, capsys):
    # Series 1: per-loop decision ladder under attack.
    n = 100
    params = ProtocolParameters.simulation(n)
    corrupted = set(range(15))
    adversary = FakeResponderAdversary(
        n, targets=corrupted, fake_message=MESSAGE + 1, seed=71
    )
    result = run_ae_to_everywhere(
        params,
        _knowledgeable(n, exclude=corrupted),
        MESSAGE,
        k_sequence=[2, 5, 8, 3, 7, 1],
        adversary=adversary,
        seed=72,
    )
    ladder_rows = [
        (s.loop, s.k, s.deciders, s.undecided_after, s.overloaded_responders)
        for s in result.loop_stats
    ]
    print_table(
        capsys,
        "E4a Algorithm 3 decision ladder (n=100, 15% fake responders)",
        ["loop", "k", "decided", "undecided", "overloaded"],
        ladder_rows,
        note="Lemma 7/10 shape: constant per-loop progress, no wrong decisions.",
    )
    assert result.no_bad_decision(MESSAGE)

    # Series 2: bits vs n (the sqrt curve).  The sub-sqrt regime needs
    # sqrt(n) * a log n < n, i.e. n > (a log n)^2 — so this series runs
    # with a = 2 at n large enough that the request pattern is sparse.
    scale_rows = []
    for n in (256, 576, 1024):
        params = ProtocolParameters.simulation(n).with_overrides(
            request_fanout_a=2.0
        )
        res = run_ae_to_everywhere(
            params, _knowledgeable(n), MESSAGE, k_sequence=[3], seed=73
        )
        sqrt_n = math.isqrt(n)
        scale_rows.append(
            (
                n,
                f"{res.max_bits_per_processor:,}",
                f"{res.max_bits_per_processor / sqrt_n:,.0f}",
                f"{res.max_bits_per_processor / n:,.0f}",
            )
        )
    print_table(
        capsys,
        "E4b bits per processor vs n (sparse regime, a=2)",
        ["n", "bits/proc", "bits/sqrt(n)", "bits/n"],
        scale_rows,
        note=(
            "Theorem 4 shape: bits/sqrt(n) grows only polylog while "
            "bits/n falls — the curve is O~(sqrt n), not O(n)."
        ),
    )

    # Series 3: fanout ablation (Lemma 8 cliff).
    ablation_rows = []
    n = 100
    for a in (1.0, 2.0, 4.0, 8.0):
        params = ProtocolParameters.simulation(n).with_overrides(
            request_fanout_a=a
        )
        res = run_ae_to_everywhere(
            params, _knowledgeable(n), MESSAGE, k_sequence=[4], seed=74
        )
        good = n
        decided = sum(
            1 for v in res.decided.values() if v == MESSAGE
        )
        ablation_rows.append(
            (a, params.request_fanout(), decided, good - decided)
        )
    benchmark.pedantic(
        lambda: run_ae_to_everywhere(
            ProtocolParameters.simulation(64),
            _knowledgeable(64),
            MESSAGE,
            k_sequence=[2],
            seed=75,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E4c request-fanout ablation (single loop, n=100)",
        ["a", "fanout a*log n", "decided", "undecided"],
        ablation_rows,
        note="Lemma 8's Chernoff cliff: small a starves the threshold.",
    )
