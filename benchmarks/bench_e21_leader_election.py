"""E21 (extension) — scalable leader election, adaptive-safe.

Section 2 cites [17]'s tournament, which elects Byzantine agreement,
*leader election* and universe reduction against a non-adaptive
adversary; Section 1.3 explains why electing processors fails outright
once the adversary is adaptive ("take over all processors in that set").
This bench measures the library's adaptive-safe replacement — leaders
drawn from the global coin subsequence — and the ablation that shows the
trap the paper sidesteps:

* E21a: a drawn rotation's good fraction tracks the population's (the
  draw is uniform and invisible to the adversary until it is public).
* E21b: the instant-takeover regime (what a [17]-style processor
  election concedes to an adaptive adversary) kills every sitting
  leader, while any takeover delay >= 1 round leaves the rotation's
  useful-good fraction at the population level until the budget drains.
* E21c: end-to-end tournament-backed rotation under adaptive
  adversaries, including the greedy winner-corruptor.
"""

import random

import pytest

from conftest import print_table
from repro.adversary.adaptive import (
    GreedyElectionAdversary,
    TournamentAdversary,
)
from repro.core.global_coin import synthetic_subsequence
from repro.core.leader_election import (
    expected_good_rounds,
    leader_schedule,
    run_leader_election,
    schedule_under_attack,
)


def _synthetic_schedule(n, rounds, bad_fraction, seed):
    rng = random.Random(seed)
    coin = synthetic_subsequence(
        n, length=rounds, good_indices=range(rounds), rng=rng
    )
    coin.corrupted = set(rng.sample(range(n), int(bad_fraction * n)))
    return leader_schedule(coin, n, count=rounds)


def test_e21_rotation_representativeness(benchmark, capsys):
    """E21a: drawn-leader good fraction vs population good fraction."""
    n = 300
    rounds = 60
    trials = 25
    rows = []
    for bad_fraction in (0.0, 0.1, 0.2, 0.3):
        fractions = [
            _synthetic_schedule(
                n, rounds, bad_fraction, seed=7000 + t
            ).good_fraction()
            for t in range(trials)
        ]
        mean = sum(fractions) / trials
        rows.append(
            (
                f"{bad_fraction:.0%}",
                f"{1 - bad_fraction:.3f}",
                f"{mean:.3f}",
                f"{min(fractions):.3f}",
            )
        )
    benchmark.pedantic(
        lambda: _synthetic_schedule(n, rounds, 0.2, seed=1),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E21a leader-rotation good fraction (n={n}, {rounds} draws, "
        f"{trials} trials)",
        ["population bad", "expected good", "measured (mean)", "(worst)"],
        rows,
        note=(
            "Uniform public draws: the rotation is representative — the "
            "adaptive adversary cannot bias who gets drawn, only react."
        ),
    )


def test_e21_takeover_delay_ablation(benchmark, capsys):
    """E21b: instant takeover (the processor-election trap) vs delayed."""
    n = 300
    rounds = 40
    bad_fraction = 0.1
    budgets = (0, 10, 40)
    rows = []
    for delay in (0, 1, 3):
        for budget in budgets:
            useful = []
            for t in range(20):
                schedule = _synthetic_schedule(
                    n, rounds, bad_fraction, seed=9000 + t
                )
                outcome = schedule_under_attack(
                    schedule, budget=budget, takeover_delay=delay
                )
                useful.append(outcome.useful_good_fraction())
            mean = sum(useful) / len(useful)
            model = expected_good_rounds(
                rounds, 1 - bad_fraction, budget, delay
            ) / rounds
            rows.append(
                (delay, budget, f"{mean:.3f}", f"{model:.3f}")
            )
    benchmark.pedantic(
        lambda: schedule_under_attack(
            _synthetic_schedule(n, rounds, bad_fraction, seed=1),
            budget=20,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E21b takeover-delay ablation (n={n}, {rounds} rounds, "
        f"10% corrupt)",
        ["takeover delay", "adversary budget", "useful-good fraction",
         "model"],
        rows,
        note=(
            "Delay 0 = the adaptive adversary against a [17]-style "
            "processor election: every targeted leader is corrupt in "
            "office.  Any positive delay leaves each leader's own round "
            "good — rotation converts adaptivity into a pure budget "
            "drain, the same reason the paper elects arrays, not "
            "processors."
        ),
    )


def test_e21_end_to_end(benchmark, capsys):
    """E21c: tournament-backed rotation under adaptive adversaries."""
    n = 27
    rows = []
    cases = [
        ("fault-free", None),
        ("10% adaptive", TournamentAdversary(n, budget=2, seed=31)),
        ("greedy winner-corruptor", GreedyElectionAdversary(n, budget=3, seed=32)),
    ]
    for label, adversary in cases:
        schedule = run_leader_election(
            n, schedule_length=4, adversary=adversary, seed=33
        )
        rows.append(
            (
                label,
                schedule.leaders,
                f"{schedule.good_fraction():.2f}",
                f"{schedule.min_agreement():.2f}",
            )
        )
    benchmark.pedantic(
        lambda: run_leader_election(27, schedule_length=3, seed=34),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E21c end-to-end leader rotation (n=27, 4 draws)",
        ["adversary", "leaders", "good fraction", "min agreement"],
        rows,
        note=(
            "Drawn from coin words committed before any winner was "
            "known: even the greedy winner-corruptor cannot bias the "
            "draw, only corrupt leaders after they are public (E21b)."
        ),
    )
