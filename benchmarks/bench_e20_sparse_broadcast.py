"""E20 — Section 2's sparse-network context, run as experiments.

The paper's Section 2 places it against almost-everywhere agreement on
sparse networks (studied since 1986) and states the structural
impossibility its Algorithm 3 is designed to escape: "everywhere
agreement is impossible in a sparse network where the number of faulty
processors t is sufficient to surround a good processor."

* E20a — a.e. broadcast via Certified Propagation on k log n-regular
  graphs: reached fraction vs random-corruption rate — the 1986-line
  guarantee (almost all good processors, not all).
* E20b — the surround attack: cost (= victim degree) and effect (the
  victim certifies the adversary's value while everyone else is fine),
  versus the paper's model, where requests go to uniformly random
  processors and no static neighborhood exists to corrupt.
"""

import pytest

from conftest import print_table
from repro.baselines.cpa import (
    RandomLiarAdversary,
    SurroundAdversary,
    run_cpa,
)


def test_e20a_ae_broadcast_vs_corruption(benchmark, capsys):
    n = 100
    rows = []
    for fraction in (0.0, 0.05, 0.10, 0.15, 0.20):
        budget = int(fraction * n)
        if budget:
            factory = lambda adj, b=budget: RandomLiarAdversary(
                adj, budget=b, lie_value=0, seed=11, protected={0}
            )
        else:
            factory = None
        outcome = run_cpa(
            n=n, dealer=0, value=1, seed=11, adversary_factory=factory
        )
        rows.append(
            (
                f"{fraction:.0%}",
                outcome.degree,
                f"{outcome.reached_fraction:.3f}",
                outcome.accepted_wrong,
                outcome.unreached,
            )
        )
    benchmark.pedantic(
        lambda: run_cpa(n=60, dealer=0, value=1, seed=11),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E20a certified propagation on a k log n-regular graph (n={n})",
        ["corruption", "degree", "reached fraction", "certified wrong",
         "unreached"],
        rows,
        note=(
            "Almost-everywhere, not everywhere: the reached fraction "
            "stays near 1 at moderate random corruption, but individual "
            "nodes with unlucky neighborhoods fall off -- the guarantee "
            "the 1986 line of work offers and the paper's Algorithm 3 "
            "upgrades."
        ),
    )
    fault_free = float(rows[0][2])
    assert fault_free == 1.0


def test_e20b_surround_attack(benchmark, capsys):
    n = 80
    rows = []
    for degree in (6, 10, 16, 24):
        outcome = run_cpa(
            n=n, dealer=0, value=1, seed=13, degree=degree,
            local_fault_bound=1,
            adversary_factory=lambda adj: SurroundAdversary(
                adj, victim=40, true_value=1, lie_value=0
            ),
        )
        victim_fate = (
            "certified the lie" if outcome.accepted_wrong
            else ("unreached" if outcome.unreached else "survived")
        )
        rows.append(
            (
                degree,
                len(outcome.corrupted),
                f"{n - len(outcome.corrupted) - 1}",
                outcome.accepted_correct,
                victim_fate,
            )
        )
        assert outcome.accepted_wrong + outcome.unreached == 1
    benchmark.pedantic(
        lambda: run_cpa(
            n=40, dealer=0, value=1, seed=13, degree=6,
            local_fault_bound=1,
            adversary_factory=lambda adj: SurroundAdversary(
                adj, victim=20, true_value=1, lie_value=0
            ),
        ),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E20b surrounding one victim on a sparse graph (n={n})",
        ["degree", "corruptions needed", "other good nodes",
         "accepted correct", "victim"],
        rows,
        note=(
            "Surrounding costs exactly the victim's degree -- trivial on "
            "any static sparse topology. The paper's Algorithm 3 has no "
            "static neighborhood to corrupt: each processor queries "
            "uniformly random peers over private channels, so the "
            "adversary cannot know whom to surround (Section 2)."
        ),
    )
