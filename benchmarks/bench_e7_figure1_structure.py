"""E7 — Figure 1: the tournament network's structure and phase traffic.

Left panel of Figure 1: a q-ary tree of committee nodes whose sizes grow
as k_l = q^{l-1} k1 while the candidate count per node stays constant
across levels.  Right panel: the per-level phase sequence (expose bin
choices -> agree -> expose coins -> send shares of winners).

We materialise both: the structural table for several n, and the bit
traffic per phase of one full run (from the ledger's phase breakdown).
"""

import pytest

from conftest import print_table
from repro.adversary.adaptive import TournamentAdversary
from repro.core.almost_everywhere import Tournament, run_almost_everywhere_ba
from repro.core.parameters import ProtocolParameters
from repro.net.rng import child_rng
from repro.topology.links import LinkStructure
from repro.topology.tree import NodeId, TreeTopology
from repro.topology.visualize import render_tree


def test_e7_tree_structure(benchmark, capsys):
    rows = []
    for n in (27, 81, 243):
        params = ProtocolParameters.simulation(n)
        tree = TreeTopology(
            n=n, q=params.q, k1=params.k1, rng=child_rng(1, "tree")
        )
        for level in range(1, tree.lstar + 1):
            candidates = (
                "-" if level == 1
                else params.candidates_per_election(level)
                if level < tree.lstar
                else f"{params.q * params.winners_per_election} (root)"
            )
            rows.append(
                (
                    n,
                    level,
                    tree.node_count(level),
                    tree.node_size(level),
                    candidates,
                )
            )
    benchmark.pedantic(
        lambda: TreeTopology(81, 3, 6, child_rng(2, "tree")),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E7a Figure 1 (left): committee tree structure",
        ["n", "level", "nodes", "k_l (members)", "candidates/node"],
        rows,
        note=(
            "Figure 1 shape: node count shrinks by q per level, committee "
            "size grows by q (capped at n at the root); candidates per "
            "node stay constant above level 2."
        ),
    )
    # Figure 1's left panel, rendered for the smallest tree.
    params = ProtocolParameters.simulation(27)
    tree = TreeTopology(
        n=27, q=params.q, k1=params.k1, rng=child_rng(1, "tree")
    )
    with capsys.disabled():
        print(render_tree(tree, member_limit=4, max_nodes_per_level=5))
        print()


def test_e7_phase_traffic(benchmark, capsys):
    n = 27
    result = run_almost_everywhere_ba(n, [1] * n, seed=95)
    breakdown = result.ledger.phase_breakdown()
    total = sum(breakdown.values())
    rows = [
        (phase, f"{bits:,}", f"{bits / total:.1%}")
        for phase, bits in sorted(
            breakdown.items(), key=lambda kv: -kv[1]
        )
    ]
    benchmark.pedantic(
        lambda: run_almost_everywhere_ba(
            27, [1] * 27, adversary=TournamentAdversary(27, 0), seed=96
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E7b Figure 1 (right): traffic per protocol phase (n={n})",
        ["phase", "bits", "share"],
        rows,
        note=(
            "Figure 1's phase sequence, weighted by measured bits: the "
            "expose (sendDown/sendOpen) phases dominate — Lemma 5's "
            "d_m^l share-replication term."
        ),
    )
