"""E10 — Lemma 5: the bit-accounting model vs the measured simulator.

Python cannot message-level-simulate n = 10^6 (DESIGN.md §3), so the
large-n claims ride on the closed-form model.  This benchmark earns that
right: at small n the simulator's measured bits and the model's counted
bits must track each other (same growth, constant-factor gap), and the
phase breakdown must show the same dominant term Lemma 5 derives (the
share-replication/expose cascade).
"""

import math

import pytest

from conftest import print_table
from repro.analysis.costmodel import (
    aeba_bits_per_processor_paper,
    everywhere_ba_bits_simulation,
)
from repro.core.almost_everywhere import run_almost_everywhere_ba


def test_e10_model_vs_simulator(benchmark, capsys):
    measured = {}
    for n in (27, 54, 81):
        result = run_almost_everywhere_ba(n, [1] * n, seed=121)
        measured[n] = result.ledger.max_bits_per_processor()
    modelled = {n: everywhere_ba_bits_simulation(n) for n in measured}

    rows = []
    ns = sorted(measured)
    for n in ns:
        rows.append(
            (
                n,
                f"{measured[n]:,}",
                f"{modelled[n]:,.0f}",
                f"{measured[n] / modelled[n]:.2f}",
            )
        )
    # Growth exponents between consecutive sizes.
    grow_rows = []
    for a, b in zip(ns, ns[1:]):
        slope_measured = math.log(measured[b] / measured[a]) / math.log(b / a)
        slope_model = math.log(modelled[b] / modelled[a]) / math.log(b / a)
        grow_rows.append(
            (f"{a}->{b}", f"{slope_measured:.2f}", f"{slope_model:.2f}")
        )
    benchmark.pedantic(
        lambda: run_almost_everywhere_ba(27, [1] * 27, seed=122),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E10a simulator vs cost model (bits per processor, fault-free)",
        ["n", "measured", "modelled", "ratio"],
        rows,
        note="Cross-validation: constant-factor gap, same direction.",
    )
    print_table(
        capsys,
        "E10b growth exponents",
        ["range", "measured slope", "model slope"],
        grow_rows,
        note=(
            "Both curves grow with the same shape; at tree-depth "
            "boundaries the measured curve steps (a new level of share "
            "replication), exactly Lemma 5's d_m^l term."
        ),
    )

    # Model extrapolation table for the paper regime.
    extrap_rows = []
    for exp in (10, 14, 18, 22):
        n = 1 << exp
        extrap_rows.append(
            (
                f"2^{exp}",
                f"{everywhere_ba_bits_simulation(n):.3g}",
                f"{aeba_bits_per_processor_paper(n, delta=8.0):.3g}",
                f"{math.sqrt(n):,.0f}",
            )
        )
    print_table(
        capsys,
        "E10c extrapolation (bits per processor)",
        ["n", "simulation constants", "paper constants (delta=8)",
         "sqrt(n)"],
        extrap_rows,
        note=(
            "Lemma 5/Theorem 1 shape: O~(sqrt n) growth with simulation "
            "constants; the literal paper constants carry enormous "
            "polylogs (DESIGN.md §3)."
        ),
    )
