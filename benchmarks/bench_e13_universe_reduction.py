"""E13 (extension) — universe reduction from the abstract.

"Our techniques also lead to solutions with O~(n^{1/2}) bit complexity
for universe reduction."  We sample committees from the tournament's
global coin subsequence and measure the two properties that make a
universe reduction useful: (a) the committee is *representative* (its bad
fraction tracks the population's), and (b) it is *agreed* almost
everywhere.
"""

import random

import pytest

from conftest import print_table
from repro.adversary.adaptive import BinStuffingAdversary
from repro.core.global_coin import synthetic_subsequence
from repro.core.universe_reduction import (
    reduce_universe,
    run_universe_reduction,
)


def test_e13_representativeness(benchmark, capsys):
    """Committee bad-fraction concentration over many samples."""
    n = 400
    rows = []
    for bad_fraction in (0.1, 0.2, 0.3):
        for size in (10, 30, 90):
            worst = 0.0
            total = 0.0
            trials = 20
            for seed in range(trials):
                rng = random.Random(1000 * size + seed)
                seq = synthetic_subsequence(
                    n, length=4 * size, good_indices=range(4 * size),
                    rng=rng,
                )
                seq.corrupted = set(
                    rng.sample(range(n), int(bad_fraction * n))
                )
                result = reduce_universe(seq, n, committee_size=size)
                worst = max(worst, result.bad_fraction_committee)
                total += result.bad_fraction_committee
            rows.append(
                (
                    f"{bad_fraction:.0%}",
                    size,
                    f"{total / trials:.3f}",
                    f"{worst:.3f}",
                )
            )
    benchmark.pedantic(
        lambda: reduce_universe(
            synthetic_subsequence(
                100, 40, range(40), random.Random(0)
            ),
            100,
            committee_size=10,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E13a committee representativeness (n={n}, 20 trials/point)",
        ["population bad", "committee size", "committee bad (mean)",
         "(worst)"],
        rows,
        note=(
            "Uniform public sampling: the committee's bad fraction "
            "concentrates on the population's as the committee grows — "
            "the universe-reduction guarantee."
        ),
    )


def test_e13_end_to_end(benchmark, capsys):
    """Tournament-backed reduction under an adaptive adversary."""
    n = 27
    rows = []
    for budget in (0, 2):
        adversary = BinStuffingAdversary(n, budget=budget, seed=151)
        result = run_universe_reduction(
            n, committee_size=6, adversary=adversary, seed=152
        )
        rows.append(
            (
                budget,
                result.committee,
                f"{result.agreement_fraction:.2f}",
                f"{result.bad_fraction_committee:.2f}",
            )
        )
    benchmark.pedantic(
        lambda: run_universe_reduction(27, committee_size=6, seed=153),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E13b end-to-end universe reduction (n=27)",
        ["corruptions", "committee", "agreement", "bad fraction"],
        rows,
        note=(
            "The committee descriptor is agreed almost everywhere and "
            "can be pushed everywhere by Algorithm 3 in O~(sqrt n) bits."
        ),
    )
