"""Shared helpers for the experiment benchmarks (E1-E22).

Each benchmark regenerates one of the paper's quantitative claims and
prints the rows/series as a table (through ``capsys.disabled()`` so the
output is visible under pytest's capture), in addition to registering a
representative timing unit with pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest

from repro.engine import Engine, get_backend, get_runner


class _SuiteEngine(Engine):
    """Engine honouring the suite-wide backend flag per scenario.

    The hybrid backend deliberately has no serial fallback (a sync
    scenario on it is a misconfiguration), but the suite-wide
    ``--engine-backend`` flag must still run the sync benchmarks — so,
    exactly like ``run-experiment --smoke``, hybrid is applied only
    where the scenario supports it and everything else runs serial.
    """

    def __init__(self, name: str, workers) -> None:
        super().__init__(get_backend("serial"))
        self._name = name
        self._workers = workers

    def run(self, spec):
        backend = self._name
        if backend == "hybrid" and not get_runner(spec.runner).supports(
            "hybrid"
        ):
            backend = "serial"
        self.backend = get_backend(backend, workers=self._workers)
        return super().run(spec)


@pytest.fixture
def engine(request) -> Engine:
    """An :class:`repro.engine.Engine` on the CLI-selected backend.

    Flip the whole benchmark suite between backends without editing
    files:  ``pytest benchmarks/bench_*.py --engine-backend process``.
    """
    return _SuiteEngine(
        request.config.getoption("--engine-backend"),
        request.config.getoption("--engine-workers"),
    )


def print_table(
    capsys,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> None:
    """Render one experiment's result table to the terminal."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    with capsys.disabled():
        print()
        print(f"=== {title} ===")
        print(line)
        print("-" * len(line))
        for row in rows:
            print(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        if note:
            print(note)
        print()
