"""E14 (extension) — multi-valued agreement costs.

The intro's motivating systems agree on *values* (batches, checkpoints),
not bits.  We compare the Turpin-Coan reduction over Phase King (the
textbook stack, Theta(n)-per-processor just for the reduction) with the
scalable bitwise composition of the paper's protocol, per value bit.
"""

from collections import Counter

import pytest

from conftest import print_table
from repro.baselines.phase_king import run_phase_king
from repro.core.multivalued import (
    run_scalable_multivalued,
    turpin_coan_reduce,
)


def _phase_king_binary(n):
    def agree(binary_inputs):
        inputs = [binary_inputs.get(p, 0) for p in range(n)]
        result = run_phase_king(n, inputs)
        values = Counter(result.good_outputs().values())
        return max(values, key=lambda v: (values[v], v))

    return agree


def test_e14_multivalued(benchmark, capsys):
    rows = []
    for n in (16, 32):
        tc = turpin_coan_reduce(
            n, [42] * n, binary_agree=_phase_king_binary(n)
        )
        rows.append(
            (
                n,
                "turpin-coan + phase king",
                tc.value,
                f"{tc.bits_per_processor_max:,} (+ binary BA)",
            )
        )
    sc = run_scalable_multivalued(27, [5] * 27, value_bits=3, seed=161)
    rows.append(
        (
            27,
            "bitwise scalable BA (3 bits)",
            sc.value,
            f"{sc.bits_per_processor_max:,}",
        )
    )
    benchmark.pedantic(
        lambda: turpin_coan_reduce(
            16, [7] * 16, binary_agree=_phase_king_binary(16)
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E14 multi-valued agreement",
        ["n", "stack", "agreed value", "bits/processor"],
        rows,
        note=(
            "Turpin-Coan's reduction rounds already cost Theta(n * |v|) "
            "per processor; the scalable stack pays O~(sqrt n) per value "
            "bit, so it wins for large n despite bigger constants."
        ),
    )
    assert sc.value == 5
