"""E19 — ablation: on-demand VSS coins vs the tournament's amortized coins.

The paper's entire tournament machinery exists to manufacture shared
randomness cheaply *per coin*: arrays of committed secrets are elected
once and spent across every agreement round.  The classical alternative
generates each coin on demand with verifiable secret sharing
(Canetti-Rabin style).  This bench prices both:

* E19a — correctness and robustness of the on-demand VSS coin: member
  agreement fault-free, under crashes, and under reveal-withholding,
  run as three 6-trial ``vss-coin`` specs through :mod:`repro.engine`
  (the runner is batchable: ``--engine-backend batch`` multiplexes each
  case's trials over one round loop).
* E19b — the amortization crossover: Theta(k^2) per VSS coin versus the
  tournament's one-time cost divided by the coins it serves — the paper's
  design wins as soon as more than a handful of coins are needed.
"""

import pytest

from conftest import print_table
from repro.core.vss_coin import CoinCostModel, vss_coin_fault_bound
from repro.engine import Engine, ExperimentSpec


def _spec(adversary, k=7, trials=6, seed=0):
    return ExperimentSpec(
        runner="vss-coin",
        n=k,
        trials=trials,
        seed=seed,
        params={"k": k, "adversary": adversary},
    )


def test_e19a_vss_coin_robustness(benchmark, capsys, engine):
    k = 7
    t = vss_coin_fault_bound(k)
    trials = 6
    cases = []
    for label, adversary in (
        ("fault-free", "none"),
        (f"{t} crashed from start", "crash"),
        (f"{t} withhold reveals", "withhold"),
    ):
        result = engine.run(_spec(adversary, k=k, trials=trials))
        agreements = int(sum(result.metric_values("agreed")))
        cases.append((label, f"{agreements}/{trials}"))
        assert agreements == trials
    benchmark.pedantic(
        lambda: Engine("serial").run(_spec("none", trials=1)),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E19a on-demand VSS coin robustness (k={k}, t={t})",
        ["adversary", "coin agreement"],
        cases,
        note=(
            "The VSS coin agrees in every trial: crashes are "
            "disqualified, withheld reveals are reconstructed from the "
            "honest majority (no-abort)."
        ),
    )


def test_e19b_amortization_crossover(benchmark, capsys):
    rows = []
    for k in (8, 16, 32):
        model = CoinCostModel(k)
        vss = model.vss_bits_per_member()
        for coins in (1, 10, 100):
            amortized = model.paper_amortized_bits_per_member(coins)
            tournament_total = amortized * coins
            rows.append(
                (
                    k,
                    coins,
                    vss * coins,
                    f"{tournament_total:,.0f}",
                    "tournament" if tournament_total < vss * coins
                    else "VSS",
                )
            )
    benchmark.pedantic(
        lambda: CoinCostModel(16).vss_bits_per_member(),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E19b coin supply cost: on-demand VSS vs tournament amortization",
        ["committee k", "coins needed", "VSS total bits/member",
         "tournament total bits/member", "cheaper"],
        rows,
        note=(
            "One-time tournament cost ~k^2 amortizes: at 10+ coins the "
            "paper's elected-array design beats per-coin VSS by the coin "
            "count -- the quantitative reason Algorithm 2 ships a whole "
            "subsequence of coins rather than tossing them on demand."
        ),
    )
    model = CoinCostModel(16)
    assert (
        model.paper_amortized_bits_per_member(100) * 100
        < model.vss_bits_per_member() * 100
    )
