"""E1 — Theorem 1: everywhere BA in O~(sqrt(n)) bits/processor, polylog time.

Reproduces the paper's headline claim as three series, all driven
through :mod:`repro.engine` (the ``--engine-backend`` option flips the
execution backend suite-wide):

* measured: full message-level runs at simulation scale (fault-free and
  at 10% adaptive corruption), reporting max bits per good processor,
  rounds, agreement, and validity;
* modelled: the closed-form cost curves at large n, showing the
  sqrt-shaped growth against the quadratic baselines (who wins, and by
  roughly what factor);
* engine scaling: the same experiment spec sharded over a process pool —
  serial vs 4-worker wall clock on a 32-trial sweep.
"""

import math
import os
import time

import pytest

from conftest import print_table
from repro.analysis.costmodel import (
    everywhere_ba_bits_simulation,
    phase_king_bits_per_processor,
    rabin_bits_per_processor,
)
from repro.engine import (
    Engine,
    ExperimentSpec,
    ProcessPoolBackend,
    SerialBackend,
)


def _spec(n, corrupt, seed, trials=1):
    return ExperimentSpec(
        runner="everywhere-ba",
        n=n,
        trials=trials,
        seed=seed,
        params={"corrupt": corrupt, "inputs": "split"},
    )


def test_e1_theorem1_scaling(benchmark, capsys, engine):
    measured_rows = []
    for n in (27, 54):
        clean = engine.run(_spec(n, corrupt=0.0, seed=41))
        attacked = engine.run(_spec(n, corrupt=0.1, seed=42))
        measured_rows.append(
            (
                n,
                f"{clean.summary('max_bits_per_processor').mean:,.0f}",
                f"{attacked.summary('max_bits_per_processor').mean:,.0f}",
                f"{clean.summary('rounds').mean:.0f}",
                f"{attacked.summary('agreement').mean:.2f}",
                attacked.summary("valid").mean == 1.0,
            )
        )
        assert clean.failure_count == 0
        assert attacked.failure_count == 0
    benchmark.pedantic(
        lambda: Engine("serial").run(_spec(27, corrupt=0.07, seed=43)),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E1a measured: everywhere BA (message-level simulation, "
        "repro.engine)",
        ["n", "bits/proc (clean)", "bits/proc (10% adv)", "rounds",
         "agreement", "valid"],
        measured_rows,
        note="Theorem 1: agreement+validity hold; rounds stay polylog.",
    )

    model_rows = []
    for exp in (8, 12, 16, 20, 24):
        n = 1 << exp
        ours = everywhere_ba_bits_simulation(n)
        pk = phase_king_bits_per_processor(n)
        rb = rabin_bits_per_processor(n)
        model_rows.append(
            (
                f"2^{exp}",
                f"{ours:.3g}",
                f"{pk:.3g}",
                f"{rb:.3g}",
                f"{pk / ours:.1f}x" if ours < pk else "baseline wins",
            )
        )
    print_table(
        capsys,
        "E1b modelled: bits/processor at scale (simulation constants)",
        ["n", "this paper", "phase king (n^2)", "rabin (n)", "advantage"],
        model_rows,
        note="Shape check: ours ~ sqrt(n) polylog; baselines ~ n^2 / n.",
    )

    # Sanity: the sqrt-shaped curve must win asymptotically.  Against
    # quadratic Phase King the crossover is early; against linear Rabin
    # the sqrt curve's polylog constants push it to ~2x10^8 (E12 locates
    # it exactly), so the check runs above that.
    assert everywhere_ba_bits_simulation(1 << 24) < (
        phase_king_bits_per_processor(1 << 24)
    )
    assert everywhere_ba_bits_simulation(1 << 34) < (
        rabin_bits_per_processor(1 << 34)
    )


def _usable_cores() -> int:
    """Cores this process may actually run on.

    ``sched_getaffinity`` respects cpuset restrictions (containers, CI
    runners pinned to a slice of a big host), where ``cpu_count`` would
    over-report and turn the speedup assertion into a timing flake.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_e1c_engine_sharding_speedup(capsys):
    """One spec, two backends: 32 trials serial vs a 4-worker pool.

    The trials are bit-identical by construction (seeds derive from the
    spec, never the backend); only the wall clock may differ.  The >= 2x
    speedup assertion applies where 4 workers can actually run in
    parallel — on fewer cores the comparison is still printed so the
    dispatch overhead stays visible.
    """
    trials = 32
    workers = 4
    spec = _spec(9, corrupt=0.1, seed=7, trials=trials)

    start = time.perf_counter()
    serial = Engine(SerialBackend()).run(spec)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = Engine(ProcessPoolBackend(workers=workers)).run(spec)
    sharded_s = time.perf_counter() - start

    assert serial.trials == sharded.trials  # bit-identical shard merge
    speedup = serial_s / sharded_s if sharded_s else float("inf")
    cores = _usable_cores()
    print_table(
        capsys,
        f"E1c engine sharding: {trials} trials of everywhere-ba(n=9, "
        f"10% adv) on {cores} core(s)",
        ["backend", "wall clock", "speedup", "failures"],
        [
            ("serial", f"{serial_s:.2f}s", "1.0x", serial.failure_count),
            (
                f"process x{workers}",
                f"{sharded_s:.2f}s",
                f"{speedup:.2f}x",
                sharded.failure_count,
            ),
        ],
        note=(
            "Per-trial seeds derive from the spec, so the shard merge is "
            "bit-identical to the serial run; with >= 4 cores the pool "
            "must cut wall clock by >= 2x."
        ),
    )
    assert serial.failure_count == 0
    # The hard floor needs `workers` genuinely parallel cores; loaded or
    # throttled hosts can export REPRO_RELAX_TIMING=1 to keep the
    # measurement without the assertion (sched_getaffinity sees cpusets
    # but not cgroup CPU quotas or co-tenants).
    if cores >= workers and not os.environ.get("REPRO_RELAX_TIMING"):
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {workers} workers on {cores} "
            f"cores, measured {speedup:.2f}x (set REPRO_RELAX_TIMING=1 "
            f"on oversubscribed hosts)"
        )
