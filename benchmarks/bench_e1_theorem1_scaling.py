"""E1 — Theorem 1: everywhere BA in O~(sqrt(n)) bits/processor, polylog time.

Reproduces the paper's headline claim as two series:

* measured: full message-level runs at simulation scale (fault-free and
  at 10% adaptive corruption), reporting max bits per good processor,
  rounds, agreement, and validity;
* modelled: the closed-form cost curves at large n, showing the
  sqrt-shaped growth against the quadratic baselines (who wins, and by
  roughly what factor).
"""

import math

import pytest

from conftest import print_table
from repro.adversary.adaptive import BinStuffingAdversary
from repro.analysis.costmodel import (
    everywhere_ba_bits_simulation,
    phase_king_bits_per_processor,
    rabin_bits_per_processor,
)
from repro.core.byzantine_agreement import run_everywhere_ba


def _run(n, budget, seed):
    adversary = BinStuffingAdversary(n, budget=budget, seed=seed)
    result = run_everywhere_ba(
        n, [p % 2 for p in range(n)], tournament_adversary=adversary,
        seed=seed,
    )
    good = [p for p in range(n) if p not in result.corrupted]
    decided = [result.ae2e_result.decided[p] for p in good]
    agree = sum(1 for v in decided if v == result.bit) / len(good)
    return {
        "bits": result.max_bits_per_processor(),
        "rounds": result.total_rounds(),
        "agree": agree,
        "valid": result.is_valid(),
    }


def test_e1_theorem1_scaling(benchmark, capsys):
    measured_rows = []
    for n in (27, 54):
        clean = _run(n, budget=0, seed=41)
        attacked = _run(n, budget=max(1, n // 10), seed=42)
        measured_rows.append(
            (
                n,
                f"{clean['bits']:,}",
                f"{attacked['bits']:,}",
                clean["rounds"],
                f"{attacked['agree']:.2f}",
                attacked["valid"],
            )
        )
    benchmark.pedantic(
        lambda: _run(27, budget=2, seed=43), rounds=1, iterations=1
    )
    print_table(
        capsys,
        "E1a measured: everywhere BA (message-level simulation)",
        ["n", "bits/proc (clean)", "bits/proc (10% adv)", "rounds",
         "agreement", "valid"],
        measured_rows,
        note="Theorem 1: agreement+validity hold; rounds stay polylog.",
    )

    model_rows = []
    for exp in (8, 12, 16, 20, 24):
        n = 1 << exp
        ours = everywhere_ba_bits_simulation(n)
        pk = phase_king_bits_per_processor(n)
        rb = rabin_bits_per_processor(n)
        model_rows.append(
            (
                f"2^{exp}",
                f"{ours:.3g}",
                f"{pk:.3g}",
                f"{rb:.3g}",
                f"{pk / ours:.1f}x" if ours < pk else "baseline wins",
            )
        )
    print_table(
        capsys,
        "E1b modelled: bits/processor at scale (simulation constants)",
        ["n", "this paper", "phase king (n^2)", "rabin (n)", "advantage"],
        model_rows,
        note="Shape check: ours ~ sqrt(n) polylog; baselines ~ n^2 / n.",
    )

    # Sanity: the sqrt-shaped curve must win asymptotically.  Against
    # quadratic Phase King the crossover is early; against linear Rabin
    # the sqrt curve's polylog constants push it to ~2x10^8 (E12 locates
    # it exactly), so the check runs above that.
    assert everywhere_ba_bits_simulation(1 << 24) < (
        phase_king_bits_per_processor(1 << 24)
    )
    assert everywhere_ba_bits_simulation(1 << 34) < (
        rabin_bits_per_processor(1 << 34)
    )
