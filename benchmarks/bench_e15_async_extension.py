"""E15 — the asynchronous open problem (Conclusion, question 2).

The paper closes by asking whether its results adapt to the asynchronous
model.  This bench quantifies the landscape the question lives in:

* E15a — Bracha reliable broadcast message growth: the standard async
  building block already costs Theta(n^2) messages per broadcast, the
  very barrier the paper breaks synchronously.
* E15b — local vs common coin: asynchronous Ben-Or (private coins) vs
  the identical skeleton driven by a common coin, on split inputs.  The
  common coin collapses the phase count — what King-Saia's global coin
  subsequence would buy asynchronously *if* it could be generated below
  n^2 bits, which is exactly the open problem.  Runs as two 8-trial
  specs of the ``async-benor`` / ``common-coin-ba`` scenarios through
  :mod:`repro.engine` (``--engine-backend async`` multiplexes each
  spec's networks breadth-first over delivery steps).
* E15b-hybrid — the same async sweep at paper scale (64 trials),
  sharded in waves across pool workers by the hybrid backend; results
  are asserted bit-identical to serial and async, and the measured
  wall-clock of all three execution modes is reported.
* E15c — adversarial scheduling: the common-coin protocol under FIFO,
  random and victim-starving schedulers; agreement and validity hold
  under all three (safety is scheduler-independent), only delivery
  counts move.
* E15d — synchronizer overhead: running synchronous Phase King over the
  async engine via the round synchronizer costs n(n-1) envelopes per
  simulated round — generic synchronization re-imposes the quadratic
  floor, so the open problem needs a native protocol.
* E15e — the constructive partial answer: Algorithm 5 itself over a
  *sparse* synchronizer (envelopes only along graph edges) reaches
  almost-everywhere agreement asynchronously at O(degree x rounds) per
  processor, isolating the open problem to the coin's generation.
"""

import os

import pytest

from conftest import print_table
from repro.asynchrony import (
    RandomScheduler,
    SeededCoinOracle,
    TargetedDelayScheduler,
    run_bracha_broadcast,
    run_common_coin_ba,
)


def test_e15a_bracha_quadratic_growth(benchmark, capsys):
    rows = []
    prev = None
    for n in (8, 16, 32, 64):
        result = run_bracha_broadcast(n=n, dealer=0, value=1)
        messages = result.ledger.total_messages()
        ratio = f"{messages / prev:.2f}" if prev else "-"
        prev = messages
        rows.append((n, messages, result.ledger.total_bits(), ratio))
        assert result.agreement_value() == 1
    benchmark.pedantic(
        lambda: run_bracha_broadcast(n=16, dealer=0, value=1),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E15a Bracha reliable broadcast: message growth (doubling n)",
        ["n", "messages", "bits", "x prev"],
        rows,
        note=(
            "Ratio ~4 per doubling: Theta(n^2) messages for ONE broadcast "
            "-- the asynchronous floor the open problem asks to break."
        ),
    )


def test_e15b_local_vs_common_coin(benchmark, capsys, engine):
    from repro.engine import Engine, ExperimentSpec

    n, trials = 6, 8
    specs = {
        name: ExperimentSpec(
            runner=name, n=n, trials=trials, seed=0,
            params={"inputs": "split"},
        )
        for name in ("async-benor", "common-coin-ba")
    }
    results = {name: engine.run(spec) for name, spec in specs.items()}
    benor, coin = results["async-benor"], results["common-coin-ba"]
    rows = []
    for b, c in zip(benor.trials, coin.trials):
        rows.append(
            (
                b.trial_index,
                int(b.metric_dict()["steps"]),
                int(c.metric_dict()["steps"]),
                int(b.metric_dict()["value"]),
                int(c.metric_dict()["value"]),
            )
        )
        assert b.metric_dict()["decided_fraction"] == 1.0
        assert c.metric_dict()["decided_fraction"] == 1.0
    benor_total = int(sum(benor.metric_values("steps")))
    coin_total = int(sum(coin.metric_values("steps")))
    benchmark.pedantic(
        lambda: Engine("async").run(specs["common-coin-ba"]),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E15b async BA deliveries, split inputs (n={n}, "
        f"{trials}-trial engine specs)",
        ["trial", "Ben-Or (local coin)", "common coin", "B-O value",
         "coin value"],
        rows,
        note=(
            f"Totals: Ben-Or {benor_total} vs common coin {coin_total} "
            "deliveries. The common coin is what the paper's global coin "
            "subsequence provides synchronously; generating it async "
            "below n^2 bits is the open problem."
        ),
    )


def test_e15b_hybrid_wave_sharding(benchmark, capsys):
    """Hybrid mode: the E15b common-coin sweep, sharded over processes.

    Waves of async instances dispatched to pool workers, each worker
    driving a local breadth-first step loop — the execution mode for
    paper-scale async sweeps.  The table reports measured wall-clock
    per backend; the assertions pin bit-identity, so the speedup (or,
    on small sweeps, the pool overhead) is the *only* observable
    difference.
    """
    from repro.engine import Engine, ExperimentSpec, HybridBackend

    n, trials = 6, 64
    spec = ExperimentSpec(
        runner="common-coin-ba", n=n, trials=trials, seed=0,
        params={"inputs": "split"},
    )
    serial = Engine("serial").run(spec)
    stepped = Engine("async").run(spec)
    sharded = Engine(HybridBackend(workers=2, wave_size=16)).run(spec)
    assert serial.trials == stepped.trials == sharded.trials
    rows = [
        (result.backend, f"{result.elapsed_seconds:.3f}", "yes")
        for result in (serial, stepped, sharded)
    ]
    speedup = serial.elapsed_seconds / max(
        sharded.elapsed_seconds, 1e-9
    )
    benchmark.pedantic(
        lambda: HybridBackend(workers=2, wave_size=16).run_trials(spec),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E15b-hybrid common-coin BA, {trials} trials (n={n}), "
        "one spec on three backends",
        ["backend", "wall-clock s", "bit-identical"],
        rows,
        note=(
            f"Hybrid (2 workers, waves of 16) vs serial: {speedup:.2f}x "
            f"wall-clock on {os.cpu_count() or 1} core(s); results are "
            "bit-identical by construction (per-trial seeds derive "
            "from the spec alone, workers rebuild the scenario by "
            "name), so backend choice is pure scheduling and the "
            "ratio scales with real cores."
        ),
    )


def test_e15c_scheduler_robustness(benchmark, capsys):
    n = 6
    inputs = [i % 2 for i in range(n)]
    schedulers = [
        ("FIFO", None),
        ("random", RandomScheduler(5)),
        ("starve p0", TargetedDelayScheduler(victims={0}, seed=5)),
        ("starve p0-p2", TargetedDelayScheduler(victims={0, 1, 2}, seed=5)),
    ]
    rows = []
    for label, scheduler in schedulers:
        result = run_common_coin_ba(
            n, inputs, oracle=SeededCoinOracle(9), scheduler=scheduler
        )
        rows.append(
            (
                label,
                result.steps,
                result.agreement_value(),
                f"{result.decided_fraction():.2f}",
            )
        )
        assert result.agreement_value() in (0, 1)
        assert result.decided_fraction() == 1.0
    benchmark.pedantic(
        lambda: run_common_coin_ba(
            n, inputs, oracle=SeededCoinOracle(9),
            scheduler=TargetedDelayScheduler(victims={0}, seed=5),
        ),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E15c common-coin BA vs delivery schedule (n={n})",
        ["scheduler", "deliveries", "agreed value", "decided fraction"],
        rows,
        note=(
            "Safety (one agreed value, validity) is independent of the "
            "scheduler; starvation only stretches delivery counts -- "
            "eventual delivery (the fairness bound) restores liveness."
        ),
    )


def test_e15d_synchronizer_overhead(benchmark, capsys):
    """Why generic synchronization cannot rescue the o(n^2) budget:
    running any synchronous protocol over an asynchronous network via a
    round synchronizer costs n(n-1) envelopes per simulated round, no
    matter how frugal the wrapped protocol is.
    """
    from repro.asynchrony import (
        run_synchronized,
        synchronizer_overhead_messages,
    )
    from repro.baselines.phase_king import (
        PhaseKingProcessor,
        phase_king_fault_bound,
    )

    rows = []
    for n in (6, 8, 12):
        phases = phase_king_fault_bound(n) + 1
        rounds = 2 * phases
        protocols = [
            PhaseKingProcessor(pid, n, 1, num_phases=phases)
            for pid in range(n)
        ]
        result, wrappers = run_synchronized(
            protocols, max_rounds=rounds + 2, fault_bound=0
        )
        measured = result.ledger.total_messages()
        modelled = synchronizer_overhead_messages(
            n, max(w.rounds_simulated for w in wrappers)
        )
        rows.append(
            (
                n,
                max(w.rounds_simulated for w in wrappers),
                measured,
                modelled,
                result.agreement_value(),
            )
        )
        assert result.agreement_value() == 1
    benchmark.pedantic(
        lambda: run_synchronized(
            [
                PhaseKingProcessor(pid, 6, 1, num_phases=2)
                for pid in range(6)
            ],
            max_rounds=6, fault_bound=0,
        ),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E15d Phase King over the async engine via round synchronizer",
        ["n", "rounds simulated", "messages measured",
         "n(n-1) x rounds", "agreed"],
        rows,
        note=(
            "Measured message counts track the n(n-1)-per-round envelope "
            "floor: synchronizing re-imposes the quadratic cost the "
            "paper's protocol avoids, so the asynchronous open problem "
            "needs a native o(n^2) protocol, not a synchronizer."
        ),
    )


def test_e15e_sparse_async_algorithm5(benchmark, capsys):
    """Algorithm 5 over the async engine at sub-quadratic cost.

    The paper's own protocol + a sparse (neighborhood-only)
    synchronizer + an oracle coin: almost-everywhere agreement
    asynchronously at O(degree x rounds) per processor.  The only piece
    that still assumes an oracle is the coin -- the open problem,
    isolated.
    """
    from repro.asynchrony import run_async_sparse_aeba

    rows = []
    for n in (24, 48, 96):
        inputs = [i % 2 for i in range(n)]
        outcome = run_async_sparse_aeba(
            n, inputs, coin_seed=7, graph_seed=7,
        )
        msgs_per_proc = outcome.result.ledger.total_messages() / n
        rows.append(
            (
                n,
                outcome.degree,
                outcome.num_rounds,
                f"{msgs_per_proc:.0f}",
                n - 1,
                f"{outcome.agreement_fraction:.2f}",
            )
        )
        assert outcome.almost_everywhere
    benchmark.pedantic(
        lambda: run_async_sparse_aeba(
            24, [1] * 24, coin_seed=7, graph_seed=7
        ),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E15e Algorithm 5 asynchronously (sparse synchronizer + oracle coin)",
        ["n", "degree", "rounds", "messages/processor",
         "all-to-all/round would be", "agreement"],
        rows,
        note=(
            "Per-processor traffic tracks degree x rounds (k log n x "
            "polylog), NOT n: the paper's a.e. agreement survives "
            "asynchrony at sub-quadratic cost given a common coin. "
            "Everything except the coin's o(n^2) asynchronous "
            "generation is in hand -- that generation is the open "
            "problem."
        ),
    )
