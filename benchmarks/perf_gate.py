#!/usr/bin/env python
"""Perf-gate entry point: ``python benchmarks/perf_gate.py [options]``.

Thin wrapper over :mod:`repro.analysis.perf_gate` (also reachable as
``python -m repro bench --json``) so the harness runs straight from a
checkout without installation.  See that module for the suite list,
the JSON schema, and the speedup-based gating rules.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.perf_gate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
