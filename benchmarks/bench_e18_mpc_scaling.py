"""E18 — extension: scalable secure computation (Conclusion, question 3).

The paper asks whether its ideas extend to scalable secure multi-party
computation.  The library's answer is the committee composition: universe
reduction picks a polylog committee; the committee runs Shamir-additive
MPC on everyone's behalf.  This bench measures the costs that make the
composition "scalable":

* E18a — per-owner bits vs committee size for a secure sum over n
  owners, against the naive n-party MPC where every owner deals to all n
  (Theta(n) per owner) — the committee keeps each owner at O(k).
* E18b — multiplication depth: Beaver openings per inner product, and
  correctness across committee sizes.
* E18c — triple preprocessing: dealer-free (GRR degree reduction)
  generation cost versus committee size — the Theta(k^2) per triple that
  a deployment pays instead of trusting a dealer.
"""

import random

import pytest

from conftest import print_table
from repro.crypto.shamir import ShamirScheme
from repro.mpc import (
    generate_triple,
    secure_inner_product,
    secure_sum,
)


def test_e18a_committee_vs_naive_cost(benchmark, capsys):
    n_owners = 256
    inputs = [i % 50 for i in range(n_owners)]
    rows = []
    for k in (5, 9, 17, 33):
        transcript = secure_sum(inputs, committee_size=k, seed=k)
        naive_bits = n_owners * 31  # deal to all n owners instead
        rows.append(
            (
                k,
                transcript.bits_per_input_owner,
                naive_bits,
                f"{naive_bits / transcript.bits_per_input_owner:.1f}x",
                transcript.result == sum(inputs),
            )
        )
        assert transcript.result == sum(inputs)
    benchmark.pedantic(
        lambda: secure_sum(inputs, committee_size=9, seed=1),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E18a secure sum over {n_owners} owners: committee vs naive "
        "n-party dealing",
        ["committee k", "bits/owner (committee)", "bits/owner (naive)",
         "saving", "correct"],
        rows,
        note=(
            "Each owner deals k shares instead of n: with k = polylog(n) "
            "the per-owner cost stays within Theorem 1's O~(sqrt n) "
            "budget -- the committee composition the conclusion asks for."
        ),
    )


def test_e18b_beaver_inner_products(benchmark, capsys):
    rng = random.Random(3)
    rows = []
    for k in (5, 9, 17):
        scheme = ShamirScheme(n_players=k, threshold=k // 2 + 1)
        length = 8
        xs_plain = [rng.randrange(100) for _ in range(length)]
        ys_plain = [rng.randrange(100) for _ in range(length)]
        xs = [scheme.deal(v, rng) for v in xs_plain]
        ys = [scheme.deal(v, rng) for v in ys_plain]
        triples = [generate_triple(scheme, rng) for _ in range(length)]
        z_shares = secure_inner_product(xs, ys, triples, scheme)
        z = scheme.reconstruct(z_shares[: scheme.threshold])
        expected = sum(a * b for a, b in zip(xs_plain, ys_plain))
        openings = 2 * length  # d and e per term
        rows.append(
            (k, length, openings, openings * k * 31, z == expected)
        )
        assert z == expected
    benchmark.pedantic(
        lambda: secure_inner_product(xs, ys, triples, scheme),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E18b Beaver-triple inner products (length-8 vectors)",
        ["committee k", "mult gates", "openings", "opened bits total",
         "correct"],
        rows,
        note=(
            "Each multiplication costs two openings (2k elements); "
            "additions are free. Circuit cost scales with multiplication "
            "count times committee size, independent of n."
        ),
    )


def test_e18c_distributed_triple_generation(benchmark, capsys):
    from repro.mpc import (
        generate_triple_distributed,
        secure_multiply,
        triple_generation_bits,
        triple_scheme,
    )

    rng = random.Random(9)
    rows = []
    for k in (4, 7, 10, 13):
        scheme = triple_scheme(k)
        triple = generate_triple_distributed(scheme, rng)
        x_shares = scheme.deal(21, rng)
        y_shares = scheme.deal(2, rng)
        z = scheme.reconstruct(
            secure_multiply(x_shares, y_shares, triple, scheme)[
                : scheme.threshold
            ]
        )
        rows.append(
            (
                k,
                scheme.threshold - 1,
                triple_generation_bits(scheme),
                2 * k * 31,
                z == 42,
            )
        )
        assert z == 42
    benchmark.pedantic(
        lambda: generate_triple_distributed(triple_scheme(7), rng),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        "E18c dealer-free Beaver triples (GRR degree reduction)",
        ["committee k", "t", "preprocessing bits/triple",
         "online bits/mult", "correct"],
        rows,
        note=(
            "Preprocessing is Theta(k^2) per triple (3 dealings of k "
            "shares by each of k members) and amortises across the "
            "batch; the online multiplication stays at two openings. "
            "This removes the trusted dealer entirely (DESIGN.md 5b)."
        ),
    )
