"""E11 — Lemmas 8, 9, 13: measured concentration vs analytic bounds.

* Lemma 8: for every confused processor and label, the number of
  knowledgeable responders concentrates around (fraction) * a log n —
  we histogram the per-label response counts against the A/B bounds.
* Lemma 9: the number of overloaded responders stays tiny.
* Lemma 13: in a round where the global coin succeeds, all-but-O(n/log n)
  processors land on one bit with probability >= 1/2 — we measure the
  per-round coalescence frequency.
"""

import math
import random
from collections import Counter

import pytest

from conftest import print_table
from repro.analysis.bounds import chernoff_below
from repro.core.ae_to_everywhere import run_ae_to_everywhere
from repro.core.coins import perfect_coin_source
from repro.core.parameters import ProtocolParameters
from repro.core.unreliable_coin_ba import run_unreliable_coin_ba


def test_e11_lemma8_lemma9(benchmark, capsys):
    n = 144
    params = ProtocolParameters.simulation(n)
    knowledgeable = set(range(int(0.67 * n)))
    # One loop; inspect the decision statistics.
    result = run_ae_to_everywhere(
        params, knowledgeable, 9, k_sequence=[3, 6, 2], seed=131
    )
    fanout = params.request_fanout()
    expected = 0.67 * fanout
    threshold_a = (0.5 + params.epsilon / 2) * fanout
    rows = [
        (
            s.loop,
            s.k,
            s.deciders,
            s.undecided_after,
            s.overloaded_responders,
        )
        for s in result.loop_stats
    ]
    benchmark.pedantic(
        lambda: run_ae_to_everywhere(
            ProtocolParameters.simulation(64),
            set(range(43)), 9, k_sequence=[2], seed=132,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E11a Algorithm 3 concentration (n={n}, fanout={fanout})",
        ["loop", "k", "decided", "undecided", "overloaded responders"],
        rows,
        note=(
            f"Lemma 8: expected knowledgeable responders per label "
            f"~{expected:.1f} >= A = {threshold_a:.1f}; Chernoff bound on "
            f"falling short: "
            f"{chernoff_below(expected, 1 - threshold_a / expected):.2e}. "
            "Lemma 9: overloaded responders stay ~0 without flooding."
        ),
    )
    assert all(s.overloaded_responders <= n // 4 for s in result.loop_stats)


def test_e11_lemma13_coalescence(benchmark, capsys):
    """P[good coin round coalesces the votes] >= 1/2."""
    n = 100
    trials = 12
    coalesced = 0
    rows = []
    for seed in range(trials):
        source = perfect_coin_source(n, 1, random.Random(200 + seed))
        result = run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)], source, num_rounds=1,
            seed=300 + seed,
        )
        votes = Counter(result.votes.values())
        top = max(votes.values()) / n
        hit = top >= 1 - 1 / math.log2(n)
        coalesced += hit
        rows.append((seed, f"{top:.2f}", "yes" if hit else "no"))
    benchmark.pedantic(
        lambda: run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)],
            perfect_coin_source(n, 1, random.Random(1)), num_rounds=1,
            seed=2,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E11b Lemma 13: one good-coin round from a 50/50 split (n=100)",
        ["trial", "top-bit fraction after round", "coalesced"],
        rows,
        note=(
            f"Coalesced {coalesced}/{trials} trials — Lemma 13 promises "
            "probability >= 1/2 (a split vote adopts the coin; a lopsided "
            "one needs the coin to match, p = 1/2)."
        ),
    )
    assert coalesced >= trials // 2 - 1
