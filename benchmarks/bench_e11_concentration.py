"""E11 — Lemmas 8, 9, 13: measured concentration vs analytic bounds.

* Lemma 8: for every confused processor and label, the number of
  knowledgeable responders concentrates around (fraction) * a log n —
  we histogram the per-label response counts against the A/B bounds.
* Lemma 9: the number of overloaded responders stays tiny.
* Lemma 13: in a round where the global coin succeeds, all-but-O(n/log n)
  processors land on one bit with probability >= 1/2 — we measure the
  per-round coalescence frequency as a 12-trial ``unreliable-coin-ba``
  sweep through :mod:`repro.engine` (flip backends with
  ``--engine-backend``; the runner is batchable, so ``batch`` multiplexes
  all 12 instances over one round loop).
"""

import pytest

from conftest import print_table
from repro.analysis.bounds import chernoff_below
from repro.core.ae_to_everywhere import run_ae_to_everywhere
from repro.core.parameters import ProtocolParameters
from repro.engine import Engine, ExperimentSpec


def test_e11_lemma8_lemma9(benchmark, capsys):
    n = 144
    params = ProtocolParameters.simulation(n)
    knowledgeable = set(range(int(0.67 * n)))
    # One loop; inspect the decision statistics.
    result = run_ae_to_everywhere(
        params, knowledgeable, 9, k_sequence=[3, 6, 2], seed=131
    )
    fanout = params.request_fanout()
    expected = 0.67 * fanout
    threshold_a = (0.5 + params.epsilon / 2) * fanout
    rows = [
        (
            s.loop,
            s.k,
            s.deciders,
            s.undecided_after,
            s.overloaded_responders,
        )
        for s in result.loop_stats
    ]
    benchmark.pedantic(
        lambda: run_ae_to_everywhere(
            ProtocolParameters.simulation(64),
            set(range(43)), 9, k_sequence=[2], seed=132,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        f"E11a Algorithm 3 concentration (n={n}, fanout={fanout})",
        ["loop", "k", "decided", "undecided", "overloaded responders"],
        rows,
        note=(
            f"Lemma 8: expected knowledgeable responders per label "
            f"~{expected:.1f} >= A = {threshold_a:.1f}; Chernoff bound on "
            f"falling short: "
            f"{chernoff_below(expected, 1 - threshold_a / expected):.2e}. "
            "Lemma 9: overloaded responders stay ~0 without flooding."
        ),
    )
    assert all(s.overloaded_responders <= n // 4 for s in result.loop_stats)


def test_e11_lemma13_coalescence(benchmark, capsys, engine):
    """P[good coin round coalesces the votes] >= 1/2."""
    n = 100
    trials = 12
    spec = ExperimentSpec(
        runner="unreliable-coin-ba",
        n=n,
        trials=trials,
        seed=200,
        params={"num_rounds": 1, "inputs": "split"},
    )
    result = engine.run(spec)
    coalesced = 0
    rows = []
    for trial in result.trials:
        metrics = trial.metric_dict()
        hit = metrics["coalesced"] == 1.0
        coalesced += hit
        rows.append(
            (
                trial.trial_index,
                f"{metrics['top_fraction']:.2f}",
                "yes" if hit else "no",
            )
        )
    benchmark.pedantic(
        lambda: Engine("serial").run(
            ExperimentSpec(
                runner="unreliable-coin-ba", n=n, trials=1, seed=2,
                params={"num_rounds": 1},
            )
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E11b Lemma 13: one good-coin round from a 50/50 split (n=100)",
        ["trial", "top-bit fraction after round", "coalesced"],
        rows,
        note=(
            f"Coalesced {coalesced}/{trials} trials — Lemma 13 promises "
            "probability >= 1/2 (a split vote adopts the coin; a lopsided "
            "one needs the coin to match, p = 1/2)."
        ),
    )
    assert coalesced >= trials // 2 - 1
