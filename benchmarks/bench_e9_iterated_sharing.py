"""E9 — Lemma 1: iterated secret sharing — secrecy and robustness.

Three series:

* secrecy: probability a random coalition of growing size determines the
  secret, for single-level vs iterated sharing (Lemma 1's point: the
  iteration forces the adversary to win at *every* level);
* the erasure ablation: corrupting the original committee after
  sendSecretUp (and its mandatory deletion) yields nothing;
* the threshold-fraction ablation DESIGN.md calls out: secrecy margin vs
  Reed-Solomon error tolerance as t/n sweeps across the paper's allowed
  [1/3, 2/3] range.
"""

import random

import pytest

from conftest import print_table
from repro.crypto.iterated import ShareTree, recoverable
from repro.crypto.shamir import ShamirScheme


def coalition_break_probability(schemes, coalition_size, trials, rng):
    """P[random leaf coalition of given size determines the secret]."""
    tree = ShareTree.deal(12345, schemes, rng)
    paths = tree.leaf_paths()
    coalition_size = min(coalition_size, len(paths))
    hits = 0
    for _ in range(trials):
        coalition = rng.sample(paths, coalition_size)
        if recoverable(schemes, coalition):
            hits += 1
    return hits / trials


def test_e9_iterated_vs_flat_secrecy(benchmark, capsys):
    rng = random.Random(111)
    flat = [ShamirScheme(16, 9)]
    iterated = [ShamirScheme(4, 3), ShamirScheme(4, 3)]
    # Both spread the secret over 16 leaf shares.
    rows = []
    for size in (4, 8, 10, 12, 14, 16):
        p_flat = coalition_break_probability(flat, size, 60, rng)
        p_iter = coalition_break_probability(iterated, size, 60, rng)
        rows.append((size, f"{p_flat:.2f}", f"{p_iter:.2f}"))
    benchmark.pedantic(
        lambda: coalition_break_probability(iterated, 8, 10, rng),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E9a coalition break probability: flat (16,9) vs iterated (4,3)^2",
        ["coalition size", "flat", "iterated"],
        rows,
        note=(
            "Lemma 1 shape: the iterated tree requires threshold-many "
            "sub-shares of threshold-many branches, so mid-size coalitions "
            "that crack the flat sharing still learn nothing."
        ),
    )


def test_e9_threshold_fraction_ablation(benchmark, capsys):
    """Secrecy margin vs error tolerance across t/n in [1/3, 2/3]."""
    group = 12
    rows = []
    for fraction in (1 / 3, 0.45, 0.5, 0.6, 2 / 3):
        threshold = int(group * fraction) + 1
        secrecy_margin = threshold - 1  # shares learnable without leak
        error_tolerance = (group - threshold) // 2  # RS decoding radius
        rows.append(
            (
                f"{fraction:.2f}",
                threshold,
                secrecy_margin,
                error_tolerance,
            )
        )
    benchmark.pedantic(lambda: ShamirScheme(12, 5), rounds=1, iterations=1)
    print_table(
        capsys,
        f"E9b threshold-fraction trade-off (dealing group {group})",
        ["t/n", "shares to reconstruct", "secrecy margin",
         "tamper tolerance"],
        rows,
        note=(
            "The paper: 'any t in [1/3, 2/3] would work'.  Low t/n buys "
            "Reed-Solomon tolerance (what small simulated committees "
            "need); high t/n buys secrecy margin.  The simulation preset "
            "picks 1/3, the paper preset 1/2."
        ),
    )
    # Monotonicity checks.
    tolerances = [int(r[3]) for r in rows]
    margins = [int(r[2]) for r in rows]
    assert tolerances == sorted(tolerances, reverse=True)
    assert margins == sorted(margins)
