"""E12 — the O(n^2) barrier: measured baseline costs and the crossover.

The paper's introduction quotes systems work declaring quadratic-message
BA "infeasible for a large number of replicas".  We measure the real
per-processor bit cost of Phase King, Rabin and Ben-Or on the simulator,
fit their growth, and locate (via the cross-validated cost models) where
this paper's O~(sqrt n) curve undercuts them — who wins, by what factor,
and where the crossover falls.
"""

import math

import pytest

from conftest import print_table
from repro.adversary.behaviors import AntiMajorityBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.analysis.costmodel import (
    crossover_point,
    everywhere_ba_bits_simulation,
    phase_king_bits_per_processor,
    rabin_bits_per_processor,
)
from repro.baselines.benor import run_benor
from repro.baselines.eig import run_eig
from repro.baselines.phase_king import run_phase_king
from repro.baselines.rabin import run_rabin


def _max_good_bits(result):
    good = [
        p
        for p in range(result.ledger.n)
        if p not in result.corrupted
    ]
    return result.ledger.max_bits_per_processor(include=good)


def test_e12_measured_baselines(benchmark, capsys):
    rows = []
    for n in (16, 32, 64):
        targets = set(range(max(1, n // 8)))
        pk = run_phase_king(
            n, [p % 2 for p in range(n)],
            adversary=StaticByzantineAdversary(
                n, targets, AntiMajorityBehavior(), seed=141
            ),
        )
        rb = run_rabin(
            n, [p % 2 for p in range(n)],
            adversary=StaticByzantineAdversary(
                n, targets, AntiMajorityBehavior(), seed=142
            ),
            seed=143,
        )
        bo = run_benor(
            n, [p % 2 for p in range(n)], max_phases=128, seed=144
        )
        eig_bits = "-"
        if n == 16:
            # EIG is exponential: at n = 16 the final round alone is
            # ~8M messages, so demonstrate the blow-up at n = 12
            # (a ~1k-path tree) and leave larger sizes as "-".
            eig = run_eig(12, [p % 2 for p in range(12)])
            eig_bits = f"{_max_good_bits(eig):,} (n=12)"
        rows.append(
            (
                n,
                eig_bits,
                f"{_max_good_bits(pk):,}",
                f"{_max_good_bits(rb):,}",
                f"{_max_good_bits(bo):,}",
                f"{rb.rounds}",
                f"{bo.rounds}",
            )
        )
    benchmark.pedantic(
        lambda: run_phase_king(32, [1] * 32), rounds=1, iterations=1
    )
    print_table(
        capsys,
        "E12a measured baseline costs (bits per processor)",
        ["n", "EIG (n=12)", "phase king", "rabin", "ben-or",
         "rabin rounds", "ben-or rounds"],
        rows,
        note=(
            "EIG explodes exponentially (unrunnable past toy sizes); "
            "Phase King grows ~n^2/proc (phases x all-to-all); Rabin ~n "
            "per round with O(1) rounds thanks to the shared coin; "
            "Ben-Or's local coins cost extra rounds."
        ),
    )
    # Phase King's quadratic growth: 4x n -> ~16x bits.
    first = int(rows[0][2].replace(",", ""))
    last = int(rows[2][2].replace(",", ""))
    assert last > 8 * first


def test_e12_crossover(benchmark, capsys):
    ours = everywhere_ba_bits_simulation
    cross_pk = crossover_point(
        ours, phase_king_bits_per_processor, hi=1 << 30
    )
    cross_rb = crossover_point(ours, rabin_bits_per_processor, hi=1 << 40)
    rows = []
    for exp in (8, 12, 16, 20, 24, 28, 32):
        n = 1 << exp
        o = ours(n)
        pk = phase_king_bits_per_processor(n)
        rb = rabin_bits_per_processor(n)
        winner = min(
            (("ours", o), ("phase-king", pk), ("rabin", rb)),
            key=lambda kv: kv[1],
        )[0]
        rows.append(
            (f"2^{exp}", f"{o:.3g}", f"{pk:.3g}", f"{rb:.3g}", winner)
        )
    benchmark.pedantic(
        lambda: crossover_point(
            ours, phase_king_bits_per_processor, hi=1 << 30
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        capsys,
        "E12b model crossover: this paper vs quadratic/linear baselines",
        ["n", "ours", "phase king", "rabin", "winner"],
        rows,
        note=(
            f"Crossover vs phase king at n ~ {cross_pk:,}; vs Rabin at "
            f"n ~ {cross_rb:,}.  Past those, the sqrt curve wins by "
            "growing factors — the paper's raison d'etre."
        ),
    )
    assert cross_pk is not None and cross_rb is not None
    # Past each crossover, the sqrt curve stays below.
    assert ours(4 * cross_pk) < phase_king_bits_per_processor(4 * cross_pk)
    assert ours(16 * cross_rb) < rabin_bits_per_processor(16 * cross_rb)

    # Render the crossover as a chart (the "figure" form of this table).
    from repro.analysis.asciiplot import Series, render_chart

    ns = [1 << exp for exp in range(8, 33, 4)]
    chart = render_chart(
        [
            Series("ours", [(n, ours(n)) for n in ns], marker="*"),
            Series(
                "phase king",
                [(n, phase_king_bits_per_processor(n)) for n in ns],
                marker="#",
            ),
            Series(
                "rabin",
                [(n, rabin_bits_per_processor(n)) for n in ns],
                marker="r",
            ),
        ],
        title="E12b bits/processor vs n (log-log)",
        x_label="n", y_label="bits",
    )
    with capsys.disabled():
        print()
        print(chart)
        print()
