"""E16 — the lower bounds that frame the paper (Section 1 and Section 2).

* E16a — Dolev-Reischuk [11] corollary: a sub-quadratic protocol
  (sampled majority, O(n log n) messages) is correct w.h.p. against an
  oblivious adversary but is defeated *deterministically* by an
  adversary that guesses the private coins — the paper's stated reason
  its own protocol must accept a positive error probability.
* E16b — Holtby-Kapron-King [14]: in the pre-specified-listener model,
  the isolation attack flips a victim whenever its listening budget
  (degree x rounds) fits inside the adversary's corruption budget; the
  cliff sits exactly at the predicted threshold.  King-Saia's
  Algorithm 3 escapes by counting received values instead of
  pre-specifying listeners (Section 2).
"""

import pytest

from conftest import print_table
from repro.lowerbounds import (
    guessing_attack_demo,
    isolation_attack_demo,
    isolation_threshold,
)


def test_e16a_coin_guessing_defeats_subquadratic(benchmark, capsys):
    rows = []
    for n in (60, 90, 120, 180):
        outcome = guessing_attack_demo(n=n, seed=n)
        rows.append(
            (
                n,
                outcome.sample_size,
                outcome.total_messages,
                n * n,
                outcome.oblivious_wrong,
                "flipped" if outcome.attack_succeeded else "survived",
            )
        )
        assert outcome.attack_succeeded
    benchmark.pedantic(
        lambda: guessing_attack_demo(n=60, seed=60), rounds=1, iterations=1
    )
    print_table(
        capsys,
        "E16a sampled-majority BA vs oblivious / coin-guessing adversaries",
        ["n", "sample c*log n", "messages", "n^2", "oblivious wrong",
         "guessing attack"],
        rows,
        note=(
            "o(n^2) messages => the coin-guessing adversary corrupts the "
            "victim's exact sample and flips it with probability 1 "
            "(Dolev-Reischuk corollary, paper Section 1): below n^2, "
            "error probability is necessarily positive."
        ),
    )


def test_e16b_isolation_cliff(benchmark, capsys):
    n = 90
    gossip_rounds = 3
    budget = 12
    cliff = isolation_threshold(budget, gossip_rounds)  # = 4
    rows = []
    for degree in (2, 3, 4, 5, 6, 8, 12):
        outcome = isolation_attack_demo(
            n=n, listen_degree=degree, gossip_rounds=gossip_rounds,
            budget=budget, seed=17,
        )
        rows.append(
            (
                degree,
                degree * gossip_rounds,
                budget,
                outcome.corruptions_used,
                "yes" if outcome.budget_exhausted else "no",
                "isolated" if outcome.victim_isolated else "safe",
            )
        )
    benchmark.pedantic(
        lambda: isolation_attack_demo(
            n=n, listen_degree=4, gossip_rounds=3, budget=12, seed=17
        ),
        rounds=1, iterations=1,
    )
    print_table(
        capsys,
        f"E16b isolation attack vs listen degree (n={n}, "
        f"{gossip_rounds} gossip rounds, budget {budget}, "
        f"cliff at degree {cliff})",
        ["listen degree", "degree*rounds", "budget", "corruptions used",
         "budget exhausted", "victim"],
        rows,
        note=(
            "Victims listening to <= budget/rounds peers per round are "
            "fully surrounded; above the cliff some honest voice gets "
            "through. With budget Theta(n) this is the Omega(n^{1/3}) "
            "message floor of [14] -- which Algorithm 3 sidesteps by "
            "accepting messages based on received-value counts."
        ),
    )
    below = isolation_attack_demo(
        n=n, listen_degree=max(1, cliff - 1), gossip_rounds=gossip_rounds,
        budget=budget, seed=17,
    )
    above = isolation_attack_demo(
        n=n, listen_degree=3 * cliff, gossip_rounds=gossip_rounds,
        budget=budget, seed=17,
    )
    assert below.victim_isolated
    assert not above.victim_isolated
