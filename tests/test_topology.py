"""Unit tests for the committee tree, links, and sparse graphs."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.links import LinkStructure
from repro.topology.sparse_graph import (
    GraphError,
    circulant_graph,
    edge_count,
    expansion_estimate,
    is_regular,
    random_regular_graph,
    theorem5_degree,
)
from repro.topology.tree import NodeId, TopologyError, TreeTopology


def small_tree(n=27, q=3, k1=4, seed=0):
    return TreeTopology(n=n, q=q, k1=k1, rng=random.Random(seed))


class TestTreeStructure:
    def test_leaf_count_equals_n(self):
        tree = small_tree()
        assert tree.node_count(1) == 27

    def test_levels_shrink_by_q(self):
        tree = small_tree()
        assert tree.node_count(2) == 9
        assert tree.node_count(3) == 3
        assert tree.node_count(4) == 1
        assert tree.lstar == 4

    def test_root_contains_everyone(self):
        tree = small_tree()
        assert tree.members(tree.root()) == tuple(range(27))

    def test_node_sizes_grow_geometrically(self):
        tree = small_tree()
        assert tree.node_size(1) == 4
        assert tree.node_size(2) == 12
        assert tree.node_size(3) == 27  # capped at n

    def test_leaf_contains_owner(self):
        tree = small_tree()
        for i in range(27):
            assert i in tree.members(NodeId(1, i))

    def test_parent_child_consistency(self):
        tree = small_tree()
        for level in range(1, tree.lstar):
            for node in tree.nodes_on_level(level):
                parent = tree.parent(node)
                assert node in tree.children(parent)

    def test_root_has_no_parent(self):
        tree = small_tree()
        with pytest.raises(TopologyError):
            tree.parent(tree.root())

    def test_leaves_have_no_children(self):
        tree = small_tree()
        assert tree.children(NodeId(1, 0)) == []

    def test_leaf_descendants_of_root_are_all_leaves(self):
        tree = small_tree()
        assert len(tree.leaf_descendants(tree.root())) == 27

    def test_leaf_descendants_partition(self):
        tree = small_tree()
        seen = []
        for node in tree.nodes_on_level(2):
            seen.extend(leaf.index for leaf in tree.leaf_descendants(node))
        assert sorted(seen) == list(range(27))

    def test_path_to_root_length(self):
        tree = small_tree()
        path = tree.path_to_root(NodeId(1, 13))
        assert len(path) == tree.lstar
        assert path[0] == NodeId(1, 13)
        assert path[-1] == tree.root()

    def test_path_to_root_requires_leaf(self):
        tree = small_tree()
        with pytest.raises(TopologyError):
            tree.path_to_root(NodeId(2, 0))

    def test_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(TopologyError):
            TreeTopology(0, 3, 4, rng)
        with pytest.raises(TopologyError):
            TreeTopology(10, 1, 4, rng)
        with pytest.raises(TopologyError):
            TreeTopology(10, 3, 0, rng)

    def test_non_power_of_q(self):
        tree = TreeTopology(n=10, q=3, k1=2, rng=random.Random(1))
        assert tree.node_count(1) == 10
        assert tree.node_count(2) == 4
        assert tree.node_count(3) == 2
        assert tree.node_count(4) == 1

    def test_single_processor_tree(self):
        tree = TreeTopology(n=1, q=2, k1=1, rng=random.Random(1))
        assert tree.lstar == 1
        assert tree.root() == NodeId(1, 0)
        assert tree.members(tree.root()) == (0,)

    def test_processor_appearances_nonempty(self):
        tree = small_tree()
        for p in range(0, 27, 9):
            appearances = tree.processor_appearances(p)
            assert any(node.level == tree.lstar for node in appearances)


class TestFaultAnalysis:
    def test_good_fraction(self):
        tree = small_tree()
        node = tree.root()
        assert tree.good_fraction(node, set()) == 1.0
        assert tree.good_fraction(node, set(range(9))) == pytest.approx(2 / 3)

    def test_is_good_node_threshold(self):
        tree = small_tree()
        bad = set(range(9))
        assert tree.is_good_node(tree.root(), bad, 2 / 3)
        assert not tree.is_good_node(tree.root(), bad, 0.7)

    def test_bad_nodes_empty_without_corruption(self):
        tree = small_tree()
        assert tree.bad_nodes(set(), 2 / 3) == set()

    def test_good_path_leaves_all_when_clean(self):
        tree = small_tree()
        leaves = tree.good_path_leaves(tree.root(), set(), 2 / 3)
        assert len(leaves) == 27

    def test_good_path_leaves_excludes_bad_paths(self):
        tree = small_tree()
        # Corrupt every member of leaf 0 -> its path is bad.
        bad = set(tree.members(NodeId(1, 0)))
        leaves = tree.good_path_leaves(tree.root(), bad, 2 / 3)
        assert NodeId(1, 0) not in leaves


class TestLinkStructure:
    def test_uplink_degrees(self):
        tree = small_tree()
        links = LinkStructure(
            tree, uplink_degree=3, ell_link_degree=2, intra_degree=3,
            rng=random.Random(2),
        )
        for level in range(1, tree.lstar):
            for child in tree.nodes_on_level(level):
                for p in tree.members(child):
                    ups = links.uplinks(child, p)
                    assert len(ups) == 3
                    parent_members = set(tree.members(tree.parent(child)))
                    assert set(ups) <= parent_members

    def test_downlink_sources_reverse_uplinks(self):
        tree = small_tree()
        links = LinkStructure(tree, 3, 2, 3, random.Random(2))
        child = NodeId(1, 5)
        parent = tree.parent(child)
        for parent_member in tree.members(parent):
            for source in links.downlink_sources(child, parent_member):
                assert parent_member in links.uplinks(child, source)

    def test_ell_links_point_to_descendant_leaves(self):
        tree = small_tree()
        links = LinkStructure(tree, 3, 2, 3, random.Random(2))
        for level in range(2, tree.lstar + 1):
            for node in tree.nodes_on_level(level):
                descendants = set(tree.leaf_descendants(node))
                for p in tree.members(node):
                    assert set(links.ell_links(node, p)) <= descendants

    def test_intra_neighbors_symmetric(self):
        tree = small_tree()
        links = LinkStructure(tree, 3, 2, 3, random.Random(2))
        node = NodeId(2, 0)
        for p in tree.members(node):
            for neighbor in links.intra_neighbors(node, p):
                assert p in links.intra_neighbors(node, neighbor)

    def test_unknown_queries_raise(self):
        tree = small_tree()
        links = LinkStructure(tree, 3, 2, 3, random.Random(2))
        with pytest.raises(TopologyError):
            links.uplinks(NodeId(1, 0), 9999)
        with pytest.raises(TopologyError):
            links.ell_links(NodeId(2, 0), 9999)
        with pytest.raises(TopologyError):
            links.intra_neighbors(NodeId(1, 0), 9999)


class TestSparseGraph:
    def test_theorem5_degree(self):
        assert theorem5_degree(1) == 0
        assert theorem5_degree(2) >= 1
        d = theorem5_degree(256, k=4.0)
        assert d == 32

    def test_random_regular_is_regular(self):
        g = random_regular_graph(20, 4, random.Random(3))
        assert is_regular(g)
        assert edge_count(g) == 20 * 4 // 2

    def test_random_regular_no_self_loops(self):
        g = random_regular_graph(16, 5, random.Random(4))
        for v, neighbors in g.items():
            assert v not in neighbors

    def test_odd_degree_sum_fixed_up(self):
        # n=5, degree=3 -> odd total, bumps to degree 4.
        g = random_regular_graph(5, 3, random.Random(5))
        assert is_regular(g)

    def test_zero_degree(self):
        g = random_regular_graph(5, 0, random.Random(5))
        assert all(len(v) == 0 for v in g.values())

    def test_invalid_degree(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 5, random.Random(5))

    def test_circulant_regular(self):
        g = circulant_graph(10, 4)
        assert is_regular(g)
        assert all(len(neigh) == 4 for neigh in g.values())

    def test_circulant_odd_degree_even_n(self):
        g = circulant_graph(10, 3)
        assert all(len(neigh) == 3 for neigh in g.values())

    def test_circulant_odd_degree_odd_n_raises(self):
        with pytest.raises(GraphError):
            circulant_graph(9, 3)

    def test_expansion_positive(self):
        g = random_regular_graph(40, 6, random.Random(6))
        assert expansion_estimate(g, trials=5, rng=random.Random(7)) > 0.5


@given(
    n=st.integers(min_value=4, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=30, deadline=None)
def test_random_regular_graph_property(n, seed):
    degree = min(4, n - 1)
    g = random_regular_graph(n, degree, random.Random(seed))
    # Symmetric adjacency.
    for v, neighbors in g.items():
        for u in neighbors:
            assert v in g[u]
