"""Tests for asynchronous Ben-Or and the common-coin variant."""

import pytest

from repro.asynchrony import (
    AdversarialCoinOracle,
    RandomScheduler,
    SeededCoinOracle,
    TargetedDelayScheduler,
    run_async_benor,
    run_common_coin_ba,
)
from repro.asynchrony.benor_async import async_benor_fault_bound
from repro.asynchrony.scheduler import AsyncAdversary
from repro.net.messages import Message


def test_fault_bound():
    assert async_benor_fault_bound(6) == 1
    assert async_benor_fault_bound(11) == 2
    assert async_benor_fault_bound(5) == 0


def test_benor_unanimous_input_decides_fast():
    n = 6
    result = run_async_benor(n, [1] * n)
    assert result.agreement_value() == 1
    assert result.decided_fraction() == 1.0


def test_benor_validity_zero():
    n = 6
    result = run_async_benor(n, [0] * n)
    assert result.agreement_value() == 0


def test_benor_split_inputs_converge_small_n():
    n = 6
    for seed in range(3):
        inputs = [i % 2 for i in range(n)]
        result = run_async_benor(
            n, inputs, seed=seed, scheduler=RandomScheduler(seed)
        )
        assert result.agreement_value() in (0, 1)
        assert result.decided_fraction() == 1.0


def test_benor_under_targeted_delay():
    n = 6
    result = run_async_benor(
        n, [1] * n, scheduler=TargetedDelayScheduler(victims={0}, seed=2)
    )
    assert result.agreement_value() == 1


class SilentCrasher(AsyncAdversary):
    """Corrupts t processors which then never speak (crash faults)."""

    def __init__(self, n, t):
        super().__init__(n, budget=t)

    def select_corruptions(self, step):
        return set(range(self.budget))

    def on_deliver(self, step, delivered):
        return []


def test_benor_tolerates_crashes():
    n = 11
    t = async_benor_fault_bound(n)
    result = run_async_benor(
        n, [1] * n, adversary=SilentCrasher(n, t)
    )
    good = result.good_outputs()
    assert all(v == 1 for v in good.values())


class VoteFlipper(AsyncAdversary):
    """Corrupted processors report the opposite bit every phase."""

    def __init__(self, n, t, bit):
        super().__init__(n, budget=t)
        self.bit = bit
        self._phase_sent = set()

    def select_corruptions(self, step):
        return set(range(self.budget))

    def on_deliver(self, step, delivered):
        if delivered is None or delivered.tag not in ("report", "proposal"):
            return []
        payload = delivered.payload
        if not isinstance(payload, (tuple, list)) or len(payload) != 2:
            return []
        phase = payload[0]
        key = (phase, delivered.tag)
        if key in self._phase_sent:
            return []
        self._phase_sent.add(key)
        out = []
        for bad in sorted(self.corrupted):
            for pid in range(self.n):
                if pid in self.corrupted:
                    continue
                out.append(
                    Message(bad, pid, delivered.tag, (phase, self.bit))
                )
        return out


def test_benor_validity_despite_byzantine_flippers():
    """All good processors start with 1; t flippers push 0; 1 must win."""
    n = 11
    t = async_benor_fault_bound(n)
    result = run_async_benor(
        n, [1] * n, adversary=VoteFlipper(n, t, bit=0)
    )
    good = result.good_outputs()
    decided = {v for v in good.values() if v is not None}
    assert decided == {1}


def test_common_coin_decides_split_inputs():
    n = 6
    for seed in range(5):
        inputs = [i % 2 for i in range(n)]
        result = run_common_coin_ba(
            n, inputs, oracle=SeededCoinOracle(seed),
            scheduler=RandomScheduler(seed),
        )
        assert result.agreement_value() in (0, 1)
        assert result.decided_fraction() == 1.0


def test_adversarial_coin_cannot_break_validity():
    """Unanimous input decides correctly even with a rigged coin."""
    n = 6
    for bit in (0, 1):
        result = run_common_coin_ba(
            n, [1] * n, oracle=AdversarialCoinOracle(fixed_bit=bit)
        )
        assert result.agreement_value() == 1


def test_adversarial_coin_cannot_split_agreement():
    """Safety holds under a rigged coin; only liveness may suffer."""
    n = 6
    inputs = [i % 2 for i in range(n)]
    result = run_common_coin_ba(
        n, inputs, oracle=AdversarialCoinOracle(fixed_bit=0),
        max_phases=12,
    )
    decided = {
        v for v in result.good_outputs().values() if v is not None
    }
    assert len(decided) <= 1


def test_oracle_coin_stability():
    oracle = SeededCoinOracle(3)
    assert oracle.coin(5) == oracle.coin(5)
    assert all(oracle.coin(p) in (0, 1) for p in range(20))


def test_oracle_scheduled_adversary():
    oracle = AdversarialCoinOracle(fixed_bit=1, schedule={2: 0})
    assert oracle.coin(1) == 1
    assert oracle.coin(2) == 0


def test_input_length_validation():
    with pytest.raises(ValueError):
        run_async_benor(4, [1, 0])
    with pytest.raises(ValueError):
        run_common_coin_ba(4, [1])


def test_common_coin_faster_than_local_coins_on_average():
    """With split inputs, the common coin needs fewer deliveries.

    This is the headline contrast of E15; at tiny n Ben-Or is still
    feasible, so compare mean delivery counts across seeds.
    """
    n = 6
    inputs = [i % 2 for i in range(n)]
    benor_steps = []
    coin_steps = []
    for seed in range(6):
        benor_steps.append(
            run_async_benor(
                n, inputs, seed=seed, scheduler=RandomScheduler(seed)
            ).steps
        )
        coin_steps.append(
            run_common_coin_ba(
                n, inputs, oracle=SeededCoinOracle(seed),
                scheduler=RandomScheduler(seed),
            ).steps
        )
    assert sum(coin_steps) <= sum(benor_steps) * 1.5
