"""Tests for the fleet control plane: queue, registry, coordinator, monitor.

The load-bearing guarantees, pinned end to end against real loopback
workers:

* **queue durability** — jobs are versioned wire documents with an
  atomic state machine (illegal transitions raise; a cancel racing a
  completion wins), and job ids allocate race-free;
* **crash-resume bit-identity** — a coordinator killed mid-sweep
  leaves persisted units behind; a restarted coordinator re-dispatches
  *only the missing units* (measured at the workers) and the merged
  result is bit-identical to an uninterrupted serial run;
* **discovery over static lists** — the coordinator dispatches to
  whatever workers are currently registered and heartbeating, honours
  their capacity weights, and evicts stale registrations;
* **the monitor** — ``repro fleet`` renders worker health, queue
  depth and per-lane throughput purely from the on-disk state, and
  raises the documented alerts.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.engine import (
    EngineError,
    ExperimentSpec,
    LaneReport,
    RunReport,
    SerialBackend,
    WorkerServer,
    write_report,
)
from repro.fleet import (
    Coordinator,
    CoordinatorInterrupted,
    CoordinatorKilled,
    FleetError,
    FleetRegistry,
    HeartbeatThread,
    JobQueue,
    UnitStore,
    alerts,
    job_from_wire,
    job_to_wire,
    render,
    snapshot,
    worker_from_wire,
    worker_to_wire,
)


def _spec(trials=4, seed=5, runner="vss-coin", n=7):
    return ExperimentSpec(runner=runner, n=n, trials=trials, seed=seed)


@pytest.fixture()
def root(tmp_path):
    return str(tmp_path / "fleet")


@pytest.fixture()
def workers(root):
    """Two real loopback workers, registered in the fleet roster."""
    registry = FleetRegistry(root)
    servers = [WorkerServer().start(), WorkerServer().start()]
    for server in servers:
        registry.register(server.host, server.port)
    yield servers
    for server in servers:
        server.close()


# -- the job queue ---------------------------------------------------------------------


def test_job_wire_round_trip(root):
    queue = JobQueue(root)
    job = queue.submit(_spec(), unit_size=2, max_live=8)
    assert job.job_id == "job-000001"
    assert job.state == "pending"
    assert job_from_wire(job_to_wire(job)) == job
    assert queue.get(job.job_id) == job
    with pytest.raises(FleetError, match="unknown job"):
        queue.get("job-999999")
    with pytest.raises(FleetError, match="malformed job"):
        job_from_wire({"version": 1, "kind": "job"})


def test_job_ids_are_dense_and_collision_free(root):
    queue = JobQueue(root)
    ids = [queue.submit(_spec(seed=i)).job_id for i in range(3)]
    assert ids == ["job-000001", "job-000002", "job-000003"]
    # A second queue handle over the same root continues the sequence.
    assert JobQueue(root).submit(_spec()).job_id == "job-000004"


def test_job_state_machine(root):
    queue = JobQueue(root)
    job = queue.submit(_spec())
    # pending cannot complete without running first.
    with pytest.raises(FleetError, match="cannot move"):
        queue.transition(job.job_id, "done")
    assert queue.transition(job.job_id, "running").state == "running"
    assert queue.transition(job.job_id, "done").state == "done"
    # Terminal states are sticky.
    with pytest.raises(FleetError, match="cannot move"):
        queue.transition(job.job_id, "running")
    with pytest.raises(FleetError, match="unknown job state"):
        queue.transition(job.job_id, "exploded")


def test_cancellation_wins_a_race_with_completion(root):
    queue = JobQueue(root)
    job = queue.submit(_spec())
    queue.transition(job.job_id, "running")
    queue.cancel(job.job_id)
    # The coordinator's happy-path completion arrives late: no error,
    # and the cancel is preserved.
    assert queue.transition(job.job_id, "done").state == "cancelled"
    assert queue.get(job.job_id).state == "cancelled"
    # But a cancel of an already-done job is a real error.
    done = queue.submit(_spec(seed=9))
    queue.transition(done.job_id, "running")
    queue.transition(done.job_id, "done")
    with pytest.raises(FleetError, match="cannot move"):
        queue.cancel(done.job_id)


def test_depth_and_results_round_trip(root):
    queue = JobQueue(root)
    job = queue.submit(_spec(trials=3))
    assert queue.depth()["pending"] == 1
    results = SerialBackend().run_trials(job.spec)
    queue.save_results(job.job_id, results)
    assert queue.load_results(job.job_id) == results
    assert queue.load_results("job-000099") is None


def test_unit_store_resume_log(root):
    spec = _spec(trials=4)
    store = UnitStore(root, "job-000001")
    from repro.engine import DispatchPlan

    units = DispatchPlan.chunked(4, 2, 1).units(spec)
    results = SerialBackend().run_trials(spec)
    store.save(0, units[0], results[:2])
    assert store.completed_indices() == (0,)
    assert store.load(0, units[0]) == results[:2]
    assert store.load(1, units[1]) is None
    # A store written under a different plan/spec is a fault, not a miss.
    other = DispatchPlan.chunked(4, 2, 1).units(_spec(trials=4, seed=99))
    with pytest.raises(FleetError, match="does not match the plan"):
        store.load(0, other[0])


# -- the worker registry ---------------------------------------------------------------


def test_registry_register_heartbeat_evict(root):
    registry = FleetRegistry(root, heartbeat_timeout=5.0)
    info = registry.register("127.0.0.1", 7100, capacity=3, worker_id="w1")
    assert worker_from_wire(worker_to_wire(info)) == info
    assert registry.addresses() == [("127.0.0.1", 7100, 3)]
    # A stale heartbeat drops the worker from the live set and gets
    # evicted; eviction is what frees its units for rebalancing.
    future = time.time() + 60
    assert registry.alive(now=future) == []
    evicted = registry.evict_dead(now=future)
    assert [w.worker_id for w in evicted] == ["w1"]
    assert registry.workers() == []
    registry.deregister("w1")  # idempotent after eviction
    with pytest.raises(FleetError, match="capacity"):
        registry.register("h", 7100, capacity=0)
    with pytest.raises(FleetError, match="unsafe"):
        registry.deregister("../escape")


def test_registry_carries_advisory_codecs(root):
    """The roster records which wire codecs each worker speaks; old
    registration files (no codecs field) decode as JSON-only, and a
    heartbeat rewrite preserves the field."""
    from repro.engine.spec import SUPPORTED_CODECS

    registry = FleetRegistry(root)
    info = registry.register(
        "127.0.0.1", 7100, worker_id="wc", codecs=tuple(SUPPORTED_CODECS)
    )
    assert info.codecs == tuple(SUPPORTED_CODECS)
    assert worker_from_wire(worker_to_wire(info)) == info
    assert registry.workers()[0].codecs == tuple(SUPPORTED_CODECS)
    refreshed = registry.heartbeat(info, units_served=3)
    assert refreshed.codecs == tuple(SUPPORTED_CODECS)
    # Tolerant decode: a pre-codec registration implies the JSON line
    # protocol (codec 1).
    doc = worker_to_wire(info)
    del doc["codecs"]
    assert worker_from_wire(doc).codecs == (1,)


def test_heartbeat_thread_registers_and_withdraws(root):
    registry = FleetRegistry(root)
    served = [0]
    thread = HeartbeatThread(
        registry,
        "127.0.0.1",
        7200,
        capacity=2,
        worker_id="hb",
        interval=0.05,
        units_served=lambda: served[0],
    )
    with thread:
        assert registry.addresses() == [("127.0.0.1", 7200, 2)]
        served[0] = 7
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            workers = registry.workers()
            if workers and workers[0].units_served == 7:
                break
            time.sleep(0.02)
        assert registry.workers()[0].units_served == 7
    # Clean shutdown withdraws immediately — no timeout wait.
    assert registry.workers() == []


# -- the coordinator -------------------------------------------------------------------


def test_coordinator_drains_queue_bit_identical_to_serial(root, workers):
    queue = JobQueue(root)
    specs = [_spec(trials=5, seed=3), _spec(trials=6, seed=4)]
    jobs = [queue.submit(spec, unit_size=2) for spec in specs]
    finished = Coordinator(root).run_once()
    assert sorted(j.job_id for j in finished) == [j.job_id for j in jobs]
    assert all(j.state == "done" for j in finished)
    for job, spec in zip(jobs, specs):
        assert queue.load_results(job.job_id) == (
            SerialBackend().run_trials(spec)
        )
        # Each job left a telemetry report for the monitor to merge.
        assert os.path.exists(queue.report_path(job.job_id))


def test_coordinator_requires_registered_workers(root):
    JobQueue(root).submit(_spec())
    with pytest.raises(FleetError, match="live worker"):
        Coordinator(root).run_once(worker_timeout=0.2)


def test_coordinator_skips_cancelled_and_reports_failed(root, workers):
    queue = JobQueue(root)
    cancelled = queue.submit(_spec(seed=1))
    queue.cancel(cancelled.job_id)
    # An unknown scenario fails the job, not the coordinator.
    bad = queue.submit(
        ExperimentSpec(runner="vss-coin", n=7, trials=2, seed=2)
    )
    broken_path = JobQueue(root)._job_path(bad.job_id)
    with open(broken_path) as handle:
        doc = handle.read()
    with open(broken_path, "w") as handle:
        handle.write(doc.replace("vss-coin", "no-such-scenario"))
    finished = Coordinator(root).run_once()
    states = {j.job_id: j.state for j in finished}
    assert states[bad.job_id] == "failed"
    assert "unknown" in JobQueue(root).get(bad.job_id).error
    assert queue.get(cancelled.job_id).state == "cancelled"


def test_crash_resume_runs_only_missing_units_bit_identically(root, workers):
    """The satellite acceptance test: kill the coordinator mid-sweep,
    restart it, and verify (a) only the not-yet-persisted units are
    re-dispatched — counted at the workers — and (b) the merged result
    is bit-identical to an uninterrupted serial run."""
    queue = JobQueue(root)
    spec = _spec(trials=8, seed=13)
    job = queue.submit(spec, unit_size=1)  # 8 single-trial units

    crashing = Coordinator(root, max_jobs=1, crash_after_units=3)
    with pytest.raises(CoordinatorKilled):
        crashing.run_once()

    # The kill left the job mid-flight: envelope still running, exactly
    # the crash budget persisted, the rest missing.
    assert queue.get(job.job_id).state == "running"
    store = UnitStore(root, job.job_id)
    assert len(store.completed_indices()) == 3
    # A unit the crashed run had already written to a socket may still
    # be draining into a worker's receive counter; wait for the counters
    # to settle so the resume delta counts only the resume's dispatches.
    served_before = sum(w.units_served for w in workers)
    settle_deadline = time.monotonic() + 5.0
    while time.monotonic() < settle_deadline:
        time.sleep(0.2)
        now_served = sum(w.units_served for w in workers)
        if now_served == served_before:
            break
        served_before = now_served

    finished = Coordinator(root, max_jobs=1).run_once()
    assert [j.state for j in finished] == ["done"]
    # Only the 5 missing units hit the workers on resume.
    assert sum(w.units_served for w in workers) - served_before == 5
    assert queue.load_results(job.job_id) == (
        SerialBackend().run_trials(spec)
    )


def test_two_jobs_survive_a_mid_run_kill(root, workers):
    """The issue's end-to-end criterion: two submitted jobs, a kill and
    restart mid-run, both jobs completing bit-identical to serial."""
    queue = JobQueue(root)
    specs = [_spec(trials=6, seed=21), _spec(trials=6, seed=22)]
    jobs = [queue.submit(spec, unit_size=1) for spec in specs]
    with pytest.raises(CoordinatorKilled):
        Coordinator(root, max_jobs=2, crash_after_units=2).run_once()
    finished = Coordinator(root, max_jobs=2).run_once()
    assert all(j.state == "done" for j in finished)
    for job, spec in zip(jobs, specs):
        assert queue.load_results(job.job_id) == (
            SerialBackend().run_trials(spec)
        )


def test_coordinator_lock_excludes_live_peers_but_steals_stale(root):
    coordinator = Coordinator(root)
    lock = coordinator._lock_path
    # A live foreign pid holds the lock: refuse to start.
    with open(lock, "w") as handle:
        handle.write("1")  # pid 1 is always alive (init)
    with pytest.raises(FleetError, match="another coordinator"):
        coordinator.run_once()
    # A dead pid's lock is stale: steal it and proceed (empty queue).
    with open(lock, "w") as handle:
        handle.write("999999999")
    assert coordinator.run_once() == []
    assert not os.path.exists(lock)  # released after the pass


def test_capacity_weights_flow_from_registry_to_plan(root):
    registry = FleetRegistry(root)
    server = WorkerServer().start()
    try:
        registry.register(
            server.host, server.port, capacity=4, worker_id="big"
        )
        coordinator = Coordinator(root)
        queue = JobQueue(root)
        job = queue.submit(_spec(trials=64))
        # weight 4 -> auto chunk size for 4 effective workers (64/16).
        assert coordinator._plan(job).unit_size == 4
        finished = coordinator.run_once()
        assert [j.state for j in finished] == ["done"]
        assert queue.load_results(job.job_id) == (
            SerialBackend().run_trials(job.spec)
        )
    finally:
        server.close()


# -- the monitor -----------------------------------------------------------------------


def test_monitor_renders_roster_queue_and_alerts(root, workers):
    queue = JobQueue(root)
    job = queue.submit(_spec(trials=4))
    Coordinator(root).run_once()
    snap = snapshot(root)
    assert len(snap.workers) == 2
    assert snap.depth()["done"] == 1
    assert snap.report.trials == 4
    text = render(snap)
    assert "fleet workers" in text
    assert "job queue" in text
    assert "done:1" in text
    assert "lane throughput" in text
    assert job.job_id in text


def test_monitor_alerts(root):
    registry = FleetRegistry(root, heartbeat_timeout=5.0)
    registry.register("127.0.0.1", 7300, worker_id="sleepy")
    queue = JobQueue(root)
    queue.submit(_spec())
    failed = queue.submit(_spec(seed=2))
    queue.transition(failed.job_id, "running")
    queue.transition(failed.job_id, "failed", error="boom")
    # A saturated lane with dead events, via a synthetic merged report.
    write_report(
        RunReport(
            backend="fleet",
            trials=10,
            wall_seconds=1.0,
            lanes=(
                LaneReport(
                    lane="hot:1",
                    units_ok=5,
                    trials=10,
                    unit_seconds=(0.95,),
                    dead_events=1,
                ),
            ),
        ),
        queue.report_path(failed.job_id),
    )
    snap = snapshot(root, heartbeat_timeout=5.0, now=time.time() + 60)
    lines = "\n".join(alerts(snap))
    assert "sleepy is stale" in lines
    assert "no live worker" in lines
    assert "failed: boom" in lines
    assert "usage 95% exceeds" in lines
    assert "1 dead event" in lines
    assert "alerts:" in render(snap)


def test_monitor_on_an_empty_root(root):
    text = render(snapshot(root))
    assert "(none registered)" in text
    assert "(empty)" in text
    assert "alerts: none" in text


# -- the CLI ---------------------------------------------------------------------------


def test_cli_queue_submit_status_cancel(root, capsys):
    assert main([
        "queue", "submit", "--root", root, "--name", "vss-coin",
        "-n", "7", "--trials", "2", "--seed", "5",
    ]) == 0
    assert "job-000001" in capsys.readouterr().out
    assert main(["queue", "status", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "pending:1" in out and "vss-coin" in out
    assert main(["queue", "cancel", "--root", root, "job-000001"]) == 0
    capsys.readouterr()
    assert main(["queue", "status", "--root", root, "job-000001"]) == 0
    assert "[cancelled]" in capsys.readouterr().out
    # Unknown scenarios are rejected at submit time, exit code 2.
    assert main([
        "queue", "submit", "--root", root, "--name", "nope",
    ]) == 2


def test_cli_queue_run_and_fleet_render(root, workers, capsys):
    assert main([
        "queue", "submit", "--root", root, "--name", "vss-coin",
        "-n", "7", "--trials", "3", "--seed", "8", "--unit-size", "1",
    ]) == 0
    assert main(["queue", "run", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "[done]" in out
    assert JobQueue(root).load_results("job-000001") == (
        SerialBackend().run_trials(_spec(trials=3, seed=8))
    )
    assert main(["fleet", "--root", root, "--once"]) == 0
    out = capsys.readouterr().out
    assert "fleet workers" in out
    assert "alerts" in out


def test_cli_queue_run_empty_queue(root, capsys):
    FleetRegistry(root)  # create the directories
    assert main(["queue", "run", "--root", root]) == 0
    assert "queue is empty" in capsys.readouterr().out


def test_cli_worker_serve_fleet_flags_registered():
    """The serve parser accepts the fleet flags (the live spawn path is
    exercised by the CI fleet job)."""
    from repro.cli import build_parser

    args = build_parser().parse_args([
        "worker", "serve", "--port", "0", "--fleet", "/tmp/f",
        "--capacity", "3", "--worker-id", "w", "--heartbeat-interval",
        "0.5",
    ])
    assert args.fleet == "/tmp/f"
    assert args.capacity == 3
    assert args.worker_id == "w"


def test_fleet_error_is_an_engine_error():
    assert issubclass(FleetError, EngineError)


# -- clock skew ------------------------------------------------------------------------


def test_worker_age_clamps_skewed_clocks(root):
    """A heartbeat stamped *ahead* of the observer's clock (cross-host
    skew, an NTP step) must read as freshly alive — never as a negative
    age that could misorder or misclassify the roster."""
    registry = FleetRegistry(root, heartbeat_timeout=5.0)
    info = registry.register("127.0.0.1", 7300, worker_id="skewed")
    past = info.heartbeat_at - 30.0  # observer's clock runs 30s behind
    assert info.age(now=past) == 0.0
    assert [w.worker_id for w in registry.alive(now=past)] == ["skewed"]
    assert registry.evict_dead(now=past) == []
    assert [w.worker_id for w in registry.workers()] == ["skewed"]
    # The stale direction still evicts on the observer's clock.
    future = info.heartbeat_at + 60.0
    assert info.age(now=future) == pytest.approx(60.0)
    assert registry.alive(now=future) == []
    assert [w.worker_id for w in registry.evict_dead(now=future)] == [
        "skewed"
    ]


def test_monitor_renders_future_stamped_worker_alive(root):
    """``repro fleet`` on a skewed observer: a future-stamped heartbeat
    renders alive at age 0.0, with no stale alert."""
    registry = FleetRegistry(root, heartbeat_timeout=5.0)
    info = registry.register("127.0.0.1", 7301, worker_id="ahead")
    observer = info.heartbeat_at - 30.0
    snap = snapshot(root, now=observer)
    assert [w.worker_id for w in snap.alive_workers()] == ["ahead"]
    assert snap.stale_workers() == []
    assert alerts(snap) == []
    text = render(snap)
    assert "alive" in text and "STALE" not in text
    assert "-3" not in text  # no negative age ever reaches the table


# -- graceful interrupts ---------------------------------------------------------------


class _StopAfter(Coordinator):
    """Coordinator that requests its own stop after N persisted units —
    the deterministic in-process stand-in for Ctrl-C mid-sweep."""

    def __init__(self, root, stop_after, **kwargs):
        super().__init__(root, **kwargs)
        self._stop_after = stop_after
        self._seen = 0

    def _note_collect(self):
        self._seen += 1
        if self._seen > self._stop_after:
            self.request_stop()
        super()._note_collect()


def test_request_stop_releases_lock_and_leaves_job_resumable(root, workers):
    """The interrupt satellite, in process: a stop requested mid-sweep
    unwinds through CoordinatorInterrupted, releases the advisory pid
    lock, leaves the job ``running`` with only the already-persisted
    units on disk, and a plain restart resumes bit-identically."""
    queue = JobQueue(root)
    spec = _spec(trials=8, seed=31)
    job = queue.submit(spec, unit_size=1)

    stopping = _StopAfter(root, stop_after=3, max_jobs=1)
    with pytest.raises(CoordinatorInterrupted):
        stopping.run_once()

    assert not os.path.exists(stopping._lock_path)  # lock released
    assert queue.get(job.job_id).state == "running"  # not "failed"
    persisted = UnitStore(root, job.job_id).completed_indices()
    assert len(persisted) == 3

    finished = Coordinator(root, max_jobs=1).run_once()
    assert [j.state for j in finished] == ["done"]
    assert queue.load_results(job.job_id) == (
        SerialBackend().run_trials(spec)
    )


def test_stop_requested_before_run_never_takes_the_lock(root):
    coordinator = Coordinator(root)
    coordinator.request_stop()
    assert coordinator.stop_requested
    with pytest.raises(CoordinatorInterrupted):
        coordinator.run_once()
    assert not os.path.exists(coordinator._lock_path)


def test_sigint_mid_run_exits_130_and_resumes_bit_identically(
    root, workers, tmp_path
):
    """``repro queue run`` under a real SIGINT: the first Ctrl-C drains
    gracefully (exit 130, lock released, job left ``running``), and a
    fresh coordinator completes the job bit-identical to serial."""
    queue = JobQueue(root)
    spec = _spec(trials=32, seed=47)
    job = queue.submit(spec, unit_size=1)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "queue", "run",
            "--root", root, "--max-jobs", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    store = UnitStore(root, job.job_id)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None or store.completed_indices():
                break
            time.sleep(0.02)
        interrupted = proc.poll() is None
        if interrupted:
            proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    if interrupted and proc.returncode == 130:
        assert "resume" in stderr
        lock = os.path.join(root, "coordinator.lock")
        assert not os.path.exists(lock)
        assert queue.get(job.job_id).state == "running"
        assert len(store.completed_indices()) < spec.trials
        finished = Coordinator(root, max_jobs=1).run_once()
        assert [j.state for j in finished] == ["done"]
    else:
        # The sweep outran the poll loop (or the signal landed after
        # the last collect) — the run must have finished cleanly.
        assert proc.returncode == 0, (stdout, stderr)
    assert queue.load_results(job.job_id) == (
        SerialBackend().run_trials(spec)
    )
