"""The perf-gate harness: schema, parity, and regression gating logic.

The gate's *timings* are machine-bound and deliberately not asserted
here; what is pinned is everything that must hold for the committed
``BENCH_core.json`` to be trustworthy — the suites run, assert naive/
plan parity internally, emit the declared schema, and the comparison
logic flags exactly the speedup regressions it claims to.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.perf_gate import (
    EXIT_REGRESSION,
    SCHEMA,
    compare,
    run_suites,
)

REPO = Path(__file__).resolve().parent.parent


def test_quick_suites_emit_the_declared_schema():
    doc = run_suites(quick=True)
    assert doc["schema"] == SCHEMA
    assert doc["mode"] == "quick"
    suites = doc["suites"]
    assert set(suites) == {
        "e9_reconstruct_n64",
        "e9_batch_reveal_n64",
        "e17_row_check_n64",
        "e17_batch_rows_n64",
        "e19_vss_coin",
        "sim_round_loop_n32",
        "dispatch_overhead",
        "telemetry_overhead",
        "cost_dispatch_mixed_n",
        "dispatch_wire_n64",
    }
    for name in ("e9_reconstruct_n64", "e17_row_check_n64"):
        suite = suites[name]
        assert suite["parity"] is True
        assert suite["naive_s"] >= 0 and suite["plan_s"] >= 0
        assert suite["speedup"] > 0
    for name in ("e9_batch_reveal_n64", "e17_batch_rows_n64"):
        suite = suites[name]
        assert suite["parity"] is True
        assert suite["engine"] in ("numpy", "columns")
        assert suite["plan_s"] >= 0 and suite["batch_s"] >= 0
        assert suite["batch_us_per_op"] >= 0
        assert suite["speedup"] > 0  # gated like the other kernels
    assert suites["sim_round_loop_n32"]["parity"] is True
    assert "speedup" not in suites["sim_round_loop_n32"]  # not gated
    assert suites["e19_vss_coin"]["seconds"] > 0
    dispatch = suites["dispatch_overhead"]
    assert dispatch["parity"] is True
    assert dispatch["dispatch_us_per_unit"] >= 0
    assert "speedup" not in dispatch  # trend-only, never gated
    telemetry = suites["telemetry_overhead"]
    assert telemetry["parity"] is True
    assert telemetry["overhead_fraction"] >= 0
    assert telemetry["span_us_per_unit"] >= 0
    assert "speedup" not in telemetry  # trend-only, never gated
    cost = suites["cost_dispatch_mixed_n"]
    assert cost["parity"] is True
    assert cost["uniform_makespan_s"] > 0 and cost["cost_makespan_s"] > 0
    assert cost["cost_units"] != cost["uniform_units"]  # geometry moved
    assert cost["speedup"] > 0  # gated: mixed-n makespan must not regress
    wire = suites["dispatch_wire_n64"]
    assert wire["parity"] is True  # both codecs matched serial, bit for bit
    assert wire["json_s"] > 0 and wire["binary_s"] > 0
    assert wire["binary_units_per_s"] > 0 and wire["json_units_per_s"] > 0
    # The binary codec must actually shrink the same sweep on the wire,
    # and the pipelined lane must have had more than one unit in flight.
    assert 0 < wire["binary_wire_bytes"] < wire["json_wire_bytes"]
    assert wire["binary_inflight_peak"] > 1
    assert wire["speedup"] > 0  # gated: pipelining win must not regress


def test_compare_flags_only_real_speedup_regressions():
    baseline = {
        "suites": {
            "a": {"speedup": 10.0},
            "b": {"speedup": 8.0},
            "wall_only": {"seconds": 1.0},
        }
    }
    current = {
        "suites": {
            "a": {"speedup": 9.0},   # -10%: within the 25% budget
            "b": {"speedup": 4.0},   # -50%: regression
            "wall_only": {"seconds": 99.0},  # never gated
        }
    }
    problems = compare(current, baseline, max_regression=0.25)
    assert len(problems) == 1 and problems[0].startswith("b:")
    assert compare(current, baseline, max_regression=0.9) == []
    # A suite that lost its speedup field entirely is also flagged.
    del current["suites"]["b"]["speedup"]
    assert any("missing" in p for p in compare(current, baseline))


def test_committed_baseline_is_valid_and_fresh_run_passes_quickly():
    """BENCH_core.json parses, matches the schema, and records the
    acceptance-criterion speedup (>= 5x on a reconstruction suite)."""
    with open(REPO / "BENCH_core.json") as f:
        baseline = json.load(f)
    assert baseline["schema"] == SCHEMA
    reconstruction_speedups = [
        suite["speedup"]
        for name, suite in baseline["suites"].items()
        if "speedup" in suite
    ]
    assert max(reconstruction_speedups) >= 5.0


def test_gate_script_runs_from_a_checkout(tmp_path):
    """benchmarks/perf_gate.py works as a plain script (the CI entry)."""
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "benchmarks" / "perf_gate.py"),
            "--quick",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == SCHEMA


def test_gate_soft_fails_on_fabricated_regression(tmp_path):
    """Exit code 3 (soft fail) when the baseline claims a speedup the
    current run cannot match."""
    impossible = {
        "schema": SCHEMA,
        "suites": {"e9_reconstruct_n64": {"speedup": 1e9}},
    }
    fake = tmp_path / "impossible.json"
    fake.write_text(json.dumps(impossible))
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO / "benchmarks" / "perf_gate.py"),
            "--quick",
            "--out",
            "-",
            "--baseline",
            str(fake),
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == EXIT_REGRESSION
    assert "PERF REGRESSION" in proc.stderr
