"""Tests for the hybrid backend and the spawn-safe worker path.

The hybrid backend's contract: shard waves of asynchronous trials
across pool workers, each worker rebuilding the scenario *by name* and
driving a local async step loop, with results merged in canonical trial
order — bit-identical to serial, whatever the wave geometry, worker
count, or ``multiprocessing`` start method.

The spawn regression tests are the teeth behind the "resolve by name in
the worker" rule: a ``spawn`` worker inherits nothing from the parent
(no forked registry, no closures), so these passing proves that specs
really do cross the process boundary as plain data.  Ad-hoc scenarios
registered at runtime remain fork-only by design, so every spec here
names a built-in.
"""

import multiprocessing

import pytest

from repro.engine import (
    AsyncBackend,
    Engine,
    EngineError,
    ExperimentSpec,
    HybridBackend,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    run_wave,
)
from repro.engine.engine import BACKEND_NAMES


def _bracha_spec(trials: int = 6, seed: int = 3) -> ExperimentSpec:
    return ExperimentSpec(
        runner="bracha-broadcast", n=5, trials=trials, seed=seed
    )


# -- wave geometry (lives in DispatchPlan; backends expose it via .plan()) -------------


def test_waves_cover_every_trial_exactly_once():
    for wave_size in (None, 1, 2, 3, 5, 100):
        backend = HybridBackend(workers=3, wave_size=wave_size)
        for trials in (1, 2, 7, 24, 25):
            flat = [
                i for wave in backend.plan(trials).indices() for i in wave
            ]
            assert flat == list(range(trials)), (wave_size, trials)


def test_geometry_lives_in_dispatch_plan():
    from repro.engine import DispatchPlan

    assert DispatchPlan.chunked(7, 3, 2).indices() == [
        [0, 1, 2], [3, 4, 5], [6]
    ]
    assert DispatchPlan.chunked(4, None, 2).indices() == [
        [0], [1], [2], [3]
    ]
    # Both pool backends shard through the same plan type.
    assert ProcessPoolBackend(workers=2, chunk_size=3).plan(7).indices() == (
        DispatchPlan.chunked(7, 3, 2).indices()
    )
    assert HybridBackend(workers=2, wave_size=3).plan(7).indices() == (
        DispatchPlan.waved(7, 3, 2).indices()
    )


def test_hybrid_constructor_validation():
    with pytest.raises(EngineError, match="worker"):
        HybridBackend(workers=-1)
    with pytest.raises(EngineError, match="wave_size"):
        HybridBackend(wave_size=0)
    with pytest.raises(EngineError, match="max_live"):
        HybridBackend(max_live=0)


# -- parity and degradation -----------------------------------------------------------


def test_single_worker_hybrid_degrades_to_in_process_async():
    spec = _bracha_spec()
    assert (
        HybridBackend(workers=1).run_trials(spec)
        == AsyncBackend().run_trials(spec)
        == SerialBackend().run_trials(spec)
    )


def test_hybrid_single_trial_skips_the_pool():
    spec = _bracha_spec(trials=1)
    assert (
        HybridBackend(workers=4).run_trials(spec)
        == SerialBackend().run_trials(spec)
    )


def test_hybrid_through_engine_and_get_backend():
    assert "hybrid" in BACKEND_NAMES
    backend = get_backend("hybrid", workers=2, wave_size=3)
    assert isinstance(backend, HybridBackend)
    assert backend.wave_size == 3
    spec = _bracha_spec(trials=4)
    result = Engine(backend).run(spec)
    assert result.backend == "hybrid"
    assert list(result.trials) == SerialBackend().run_trials(spec)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ad-hoc scenarios only cross a fork boundary",
)
def test_hybrid_contains_builder_crashes_per_trial():
    """A raising async builder becomes a failed TrialResult inside the
    worker's wave — the sweep survives, identically to serial.  (Uses a
    fork pool: ad-hoc registrations don't cross a spawn boundary.)"""
    from repro.engine import Scenario, get_scenario, register

    def _fragile(ctx):
        if ctx.trial_index == 2:
            raise RuntimeError(f"bad wave build in trial {ctx.trial_index}")
        return get_scenario("bracha-broadcast").build_async_instance(ctx)

    register(
        Scenario(
            name="test-fragile-wave-bracha",
            build_async_instance=_fragile,
            description="test-only: one trial's async builder raises",
        )
    )
    spec = ExperimentSpec(
        runner="test-fragile-wave-bracha", n=5, trials=4, seed=2
    )
    serial = SerialBackend().run_trials(spec)
    sharded = HybridBackend(
        workers=2, wave_size=2, start_method="fork"
    ).run_trials(spec)
    assert serial == sharded
    assert [t.ok for t in sharded] == [True, True, False, True]
    assert "bad wave build in trial 2" in sharded[2].failure


# -- run_wave, the worker entry point -------------------------------------------------


def test_run_wave_matches_the_serial_slice():
    spec = _bracha_spec(trials=6)
    serial = SerialBackend().run_trials(spec)
    wave = run_wave(spec, [4, 1, 3])  # arbitrary order in
    assert wave == [serial[1], serial[3], serial[4]]  # index order out
    assert run_wave(spec, []) == []


def test_run_wave_honours_max_live():
    spec = _bracha_spec(trials=5)
    serial = SerialBackend().run_trials(spec)
    assert run_wave(spec, range(5), max_live=2) == serial


def test_run_wave_rejects_non_async_scenarios():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=2, seed=1)
    with pytest.raises(EngineError, match="async"):
        run_wave(spec, [0])


# -- spawn start method: the worker-rebuild regression --------------------------------


def test_process_pool_spawn_bit_identical_to_serial():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=3, seed=5)
    serial = SerialBackend().run_trials(spec)
    spawned = ProcessPoolBackend(
        workers=2, chunk_size=2, start_method="spawn"
    ).run_trials(spec)
    assert spawned == serial


def test_hybrid_spawn_bit_identical_to_serial():
    spec = _bracha_spec(trials=6, seed=9)
    serial = SerialBackend().run_trials(spec)
    spawned = HybridBackend(
        workers=2, wave_size=2, start_method="spawn"
    ).run_trials(spec)
    assert spawned == serial


# -- per-process scenario resolution memo ---------------------------------------------


def test_worker_scenario_resolution_memoised(monkeypatch):
    """Waves resolve the scenario by name exactly once per process.

    ``run_wave`` is what a pool worker executes per wave; resolution
    must go through the per-process memo so repeated waves of the same
    spec skip the registry lookup (and its lazy-builtins guard).
    """
    from repro.engine import registry

    registry._RESOLVED.pop("bracha-broadcast", None)
    lookups = []
    real_get_runner = registry.get_runner

    def counting_get_runner(name):
        lookups.append(name)
        return real_get_runner(name)

    monkeypatch.setattr(registry, "get_runner", counting_get_runner)
    spec = _bracha_spec(trials=6)
    serial = SerialBackend().run_trials(spec)
    first = run_wave(spec, [0, 1])
    second = run_wave(spec, [2, 3])
    assert first + second == serial[:4]
    assert lookups.count("bracha-broadcast") == 1


def test_resolution_memo_invalidated_by_reregistration():
    """Latest registration wins even through the memo."""
    from repro.engine import Scenario, registry
    from repro.engine.spec import TrialResult

    def _trial_a(ctx):
        return TrialResult(
            trial_index=ctx.trial_index, seed=ctx.seed, metrics=(), ok=True
        )

    name = "test-memo-reregister"
    a = Scenario(name=name, run_trial=_trial_a, description="first")
    registry.register(a)
    assert registry.resolve_cached(name) is a
    b = Scenario(name=name, run_trial=_trial_a, description="second")
    registry.register(b)
    assert registry.resolve_cached(name) is b
