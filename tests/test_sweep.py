"""Tests for the experiment-sweep utilities."""

import math

import pytest

from repro.analysis.sweep import (
    MetricSummary,
    fit_power_law,
    run_sweep,
    summarise,
)


class TestSummarise:
    def test_basic_stats(self):
        s = summarise("m", [1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_single_value_stdev_zero(self):
        assert summarise("m", [5]).stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarise("m", [])

    def test_as_tuple(self):
        assert summarise("m", [2, 4]).as_tuple() == (3.0, 2.0, 4.0)


class TestRunSweep:
    def test_grid_and_seeds(self):
        calls = []

        def trial(seed, x):
            calls.append((seed, x))
            return {"y": x * 10 + seed}

        series = run_sweep(
            points=[{"x": 1}, {"x": 2}],
            trial=trial,
            seeds=[0, 1],
        )
        assert len(series) == 2
        assert len(calls) == 4
        assert series[0].params == {"x": 1}
        assert series[0].metric("y").mean == pytest.approx(10.5)
        assert series[1].metric("y").maximum == 21

    def test_multiple_metrics(self):
        series = run_sweep(
            points=[{}],
            trial=lambda seed: {"a": seed, "b": 2 * seed},
            seeds=[1, 3],
        )
        assert series[0].metric("a").mean == 2
        assert series[0].metric("b").mean == 4


class TestPowerLawFit:
    def test_exact_square(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert alpha == pytest.approx(2.0)
        assert c == pytest.approx(1.0)

    def test_exact_sqrt(self):
        xs = [4, 16, 64, 256]
        ys = [3 * math.sqrt(x) for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert alpha == pytest.approx(0.5)
        assert c == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 2])
