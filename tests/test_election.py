"""Unit tests for Feige's lightest-bin election (Algorithm 1, Lemma 4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.election import (
    ElectionError,
    good_winner_fraction,
    lemma4_bound,
    lightest_bin_election,
    simulate_election_against_adversary,
)


class TestLightestBin:
    def test_simple_outcome(self):
        # Bins: 0 -> {0,1}, 1 -> {2}: bin 1 is lightest.
        result = lightest_bin_election([0, 0, 1], num_bins=2)
        assert result.lightest_bin == 1
        assert result.winners == (2,)

    def test_tie_breaks_low(self):
        result = lightest_bin_election([0, 1], num_bins=2)
        assert result.lightest_bin == 0
        assert result.winners == (0,)

    def test_empty_bins_ignored(self):
        # All candidates in bin 2; bins 0,1 empty but not electable.
        result = lightest_bin_election([2, 2], num_bins=3, target_winners=2)
        assert result.lightest_bin == 2
        assert set(result.winners) == {0, 1}

    def test_padding_when_lightest_too_small(self):
        result = lightest_bin_election(
            [0, 1, 1, 1], num_bins=2, target_winners=2
        )
        assert result.lightest_bin == 0
        assert len(result.winners) == 2
        assert result.padded == 1
        assert 0 in result.winners

    def test_truncation_when_lightest_too_big(self):
        result = lightest_bin_election(
            [0, 0, 0, 0], num_bins=2, target_winners=2
        )
        assert len(result.winners) == 2

    def test_default_target(self):
        result = lightest_bin_election([0, 1, 0, 1], num_bins=2)
        assert len(result.winners) == 2  # r / num_bins

    def test_invalid_inputs(self):
        with pytest.raises(ElectionError):
            lightest_bin_election([], 2)
        with pytest.raises(ElectionError):
            lightest_bin_election([0], 0)
        with pytest.raises(ElectionError):
            lightest_bin_election([5], 2)

    def test_bin_counts_reported(self):
        result = lightest_bin_election([0, 0, 1], num_bins=2)
        assert result.bin_counts == {0: 2, 1: 1}


class TestGoodWinnerFraction:
    def test_all_good(self):
        result = lightest_bin_election([0, 1], num_bins=2)
        assert good_winner_fraction(result, {0, 1}) == 1.0

    def test_half_good(self):
        result = lightest_bin_election([0, 0, 1, 1], num_bins=2)
        # winners are {0, 1} (bin 0, tie-break low)
        assert good_winner_fraction(result, {0}) == 0.5


class TestLemma4:
    def test_bound_decreases_with_good_count(self):
        assert lemma4_bound(100, 10) < lemma4_bound(10, 10)

    def test_representativeness_under_stuffing(self):
        """Lemma 4's claim: adversarial bin choices made after seeing the
        good choices cannot starve good candidates from the winner set."""
        rng = random.Random(42)
        num_good, num_bad, num_bins = 300, 150, 30
        fractions = []
        for trial in range(40):
            result = simulate_election_against_adversary(
                num_good, num_bad, num_bins, "stuff_lightest", rng
            )
            good = set(range(num_good))
            fractions.append(good_winner_fraction(result, good))
        mean_fraction = sum(fractions) / len(fractions)
        # Good candidates are 2/3 of the field; winners should stay close.
        assert mean_fraction > 0.55

    def test_balance_strategy_also_bounded(self):
        rng = random.Random(7)
        num_good, num_bad, num_bins = 300, 150, 30
        fractions = []
        for trial in range(40):
            result = simulate_election_against_adversary(
                num_good, num_bad, num_bins, "balance", rng
            )
            fractions.append(
                good_winner_fraction(result, set(range(num_good)))
            )
        assert sum(fractions) / len(fractions) > 0.5

    def test_avoid_strategy_helps_good(self):
        rng = random.Random(8)
        result = simulate_election_against_adversary(
            300, 150, 30, "avoid", rng
        )
        assert good_winner_fraction(result, set(range(300))) == 1.0

    def test_unknown_strategy_raises(self):
        with pytest.raises(ElectionError):
            simulate_election_against_adversary(
                10, 5, 2, "nope", random.Random(0)
            )


@given(
    choices=st.lists(
        st.integers(min_value=0, max_value=7), min_size=1, max_size=64
    ),
)
@settings(max_examples=80)
def test_election_invariants(choices):
    result = lightest_bin_election(choices, num_bins=8)
    # Winners are valid candidate indices, distinct, and include the full
    # lightest bin or a padded/truncated set of the target size.
    assert len(set(result.winners)) == len(result.winners)
    assert all(0 <= j < len(choices) for j in result.winners)
    lightest_members = [
        j for j, c in enumerate(choices) if c == result.lightest_bin
    ]
    target = max(1, len(choices) // 8)
    if len(lightest_members) >= target:
        assert set(result.winners) <= set(lightest_members)
    else:
        assert set(lightest_members) <= set(result.winners)
