"""Property tests for the engine's versioned JSON wire format.

The wire format is what lets a spec cross a *host* boundary the way a
pickle crosses a process boundary, so the tests pin the properties the
distributed backend's bit-identity rests on:

* **round trip is the identity** — specs (unicode params, huge ints,
  booleans, None defaults) and results (SHA-256-sized seeds, ledger
  stats, failure text) survive ``to_wire -> json -> from_wire``
  unchanged, over randomized inputs (stdlib ``random``, seeded — no
  hypothesis dependency, like the Param property tests);
* **NaN/inf never cross** — rejected loudly in both directions, since
  JSON either refuses them or silently corrupts them;
* **version mismatches are rejected** — a worker from a different
  engine version answers with one clear error, not a shape crash.
"""

import json
import math
import random

import pytest

from repro.engine import (
    ExperimentSpec,
    LedgerStats,
    TrialResult,
    WIRE_VERSION,
    WireFormatError,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.engine.spec import wire_dumps, wire_loads

RNG = random.Random(0xD15BA7C4)

#: Characters deliberately beyond ASCII: combining marks, CJK, emoji,
#: a right-to-left run, quotes and backslashes.
_NASTY_TEXT = [
    "plain",
    "ünïcodé",
    "名前",
    "🎲🎲",
    "שלום",
    'quotes "and" \\backslashes\\',
    "newline\nand\ttab",
    "́combining",
    "",
]


def _random_param_value(rng):
    kind = rng.randrange(5)
    if kind == 0:
        return rng.choice(_NASTY_TEXT)
    if kind == 1:
        # Large ints well past 2**63: JSON-in-Python carries them exactly.
        return rng.randrange(-(2 ** 200), 2 ** 200)
    if kind == 2:
        return rng.choice([True, False])
    if kind == 3:
        return None
    return rng.uniform(-1e12, 1e12)


def _random_spec(rng):
    params = {
        f"p{_i}_{rng.choice(_NASTY_TEXT)[:4]}": _random_param_value(rng)
        for _i in range(rng.randrange(0, 6))
    }
    return ExperimentSpec(
        runner=rng.choice(["vss-coin", "bracha-broadcast", "名前-scenario"]),
        n=rng.randrange(1, 10_000),
        trials=rng.randrange(1, 10_000),
        seed=rng.randrange(0, 2 ** 256),  # SHA-256-sized master seeds
        params=params,
    )


def _random_result(rng):
    metrics = tuple(
        sorted(
            (rng.choice(_NASTY_TEXT) + str(i), rng.uniform(-1e9, 1e9))
            for i in range(rng.randrange(0, 5))
        )
    )
    ledger = LedgerStats(
        total_bits=rng.randrange(0, 2 ** 80),
        total_messages=rng.randrange(0, 2 ** 40),
        max_bits_per_processor=rng.randrange(0, 2 ** 60),
        rounds=rng.randrange(0, 10_000),
        phase_bits=tuple(
            sorted(
                (phase, rng.randrange(0, 2 ** 50))
                for phase in rng.sample(["deal", "echo", "核心", "🎯"], 2)
            )
        ),
    )
    return TrialResult(
        trial_index=rng.randrange(0, 100_000),
        seed=rng.randrange(0, 2 ** 256),
        metrics=metrics,
        ledger=ledger,
        ok=rng.random() < 0.8,
        failure=rng.choice(_NASTY_TEXT),
    )


# -- round trips -----------------------------------------------------------------------


def test_spec_round_trip_is_identity_property():
    for _ in range(200):
        spec = _random_spec(RNG)
        doc = spec_to_wire(spec)
        # Through the actual serializer, not just the dict.
        decoded = spec_from_wire(wire_loads(wire_dumps(doc)))
        assert decoded == spec
        # Seeds derive identically after the round trip.
        assert decoded.trial_seed(0) == spec.trial_seed(0)


def test_result_round_trip_is_identity_property():
    for _ in range(200):
        result = _random_result(RNG)
        decoded = result_from_wire(wire_loads(wire_dumps(result_to_wire(result))))
        assert decoded == result


def test_wire_documents_are_plain_single_line_json():
    spec = _random_spec(random.Random(1))
    text = wire_dumps(spec_to_wire(spec))
    assert "\n" not in text
    assert json.loads(text)["version"] == WIRE_VERSION


def test_float_params_round_trip_bit_exactly():
    """repr-based JSON floats are exact: the round trip returns the
    same IEEE double, not an approximation."""
    for value in (0.1, 1e-300, 1.5e308, -0.0, math.pi):
        spec = ExperimentSpec(
            runner="vss-coin", n=7, trials=1, params={"x": value}
        )
        decoded = spec_from_wire(wire_loads(wire_dumps(spec_to_wire(spec))))
        assert decoded.param_dict()["x"] == value
        assert math.copysign(1, decoded.param_dict()["x"]) == (
            math.copysign(1, value)
        )


# -- NaN / non-finite rejection --------------------------------------------------------


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_params_rejected_on_encode(bad):
    spec = ExperimentSpec(
        runner="vss-coin", n=7, trials=1, params={"x": bad}
    )
    with pytest.raises(WireFormatError, match="non-finite"):
        spec_to_wire(spec)


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_non_finite_metrics_rejected_on_encode(bad):
    result = TrialResult(
        trial_index=0, seed=1, metrics=(("m", bad),)
    )
    with pytest.raises(WireFormatError, match="non-finite"):
        result_to_wire(result)


def test_non_finite_values_rejected_on_decode():
    spec_doc = spec_to_wire(
        ExperimentSpec(runner="vss-coin", n=7, trials=1, params={"x": 1.0})
    )
    spec_doc["params"][0][1] = float("nan")
    with pytest.raises(WireFormatError, match="non-finite"):
        spec_from_wire(spec_doc)


def test_wire_dumps_refuses_nan_as_backstop():
    with pytest.raises(WireFormatError):
        wire_dumps({"version": WIRE_VERSION, "kind": "spec", "x": float("nan")})


def test_unwireable_param_types_rejected():
    spec = ExperimentSpec(
        runner="vss-coin", n=7, trials=1, params={"x": (1, 2)}
    )
    with pytest.raises(WireFormatError, match="unwireable"):
        spec_to_wire(spec)


# -- version / kind rejection ----------------------------------------------------------


def test_version_mismatch_rejected():
    doc = spec_to_wire(ExperimentSpec(runner="vss-coin", n=7, trials=1))
    for bad_version in (WIRE_VERSION + 1, 0, None, "1"):
        tampered = dict(doc, version=bad_version)
        with pytest.raises(WireFormatError, match="version"):
            spec_from_wire(tampered)
    result_doc = result_to_wire(TrialResult(trial_index=0, seed=1, metrics=()))
    with pytest.raises(WireFormatError, match="version"):
        result_from_wire(dict(result_doc, version=WIRE_VERSION + 1))


def test_kind_mismatch_and_malformed_documents_rejected():
    spec_doc = spec_to_wire(ExperimentSpec(runner="vss-coin", n=7, trials=1))
    with pytest.raises(WireFormatError, match="kind"):
        result_from_wire(spec_doc)
    with pytest.raises(WireFormatError, match="object"):
        spec_from_wire([1, 2, 3])
    with pytest.raises(WireFormatError, match="malformed"):
        wire_loads("{not json")
    truncated = dict(spec_doc)
    del truncated["params"]
    with pytest.raises(WireFormatError, match="malformed"):
        spec_from_wire(truncated)


def test_worker_rejects_version_mismatch_over_the_socket():
    """A live worker answers a wrong-version request with an error
    document naming the version, instead of crashing or guessing."""
    import socket

    from repro.engine import WorkerServer

    with WorkerServer() as server:
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            bad = {"version": WIRE_VERSION + 1, "kind": "unit"}
            sock.sendall((json.dumps(bad) + "\n").encode())
            reply = json.loads(sock.makefile().readline())
    assert reply["kind"] == "error"
    assert "version" in reply["error"]
