"""Tests for the Dolev-Reischuk and Holtby-Kapron-King attack demos."""

import pytest

from repro.lowerbounds import (
    CoinGuessingAdversary,
    IsolationAdversary,
    ObliviousFlipAdversary,
    guessing_attack_demo,
    isolation_attack_demo,
    isolation_threshold,
    run_listener_gossip,
    run_sampled_majority,
)
from repro.lowerbounds.dolev_reischuk import (
    default_sample_size,
    sample_peers,
)
from repro.lowerbounds.holtby_kapron_king import minimum_safe_degree


# -- Dolev-Reischuk: sampled majority + coin guessing ---------------------------------


def test_sample_size_grows_logarithmically():
    assert default_sample_size(100) < default_sample_size(10_000)
    assert default_sample_size(2) >= 1
    assert default_sample_size(10) <= 9


def test_sample_peers_deterministic_and_self_free():
    a = sample_peers(3, 50, 10, seed=7)
    b = sample_peers(3, 50, 10, seed=7)
    assert a == b
    assert 3 not in a
    assert len(set(a)) == 10


def test_fault_free_sampled_majority_is_correct():
    n = 60
    result = run_sampled_majority(n, [1] * n)
    assert result.agreement_value() == 1


def test_sampled_majority_message_cost_subquadratic():
    n = 120
    result = run_sampled_majority(n, [0] * n)
    # Queries + answers: 2 * n * sample_size << n^2.
    assert result.ledger.total_messages() < n * n / 4


def test_oblivious_adversary_rarely_flips_anyone():
    n = 90
    budget = n // 10
    result = run_sampled_majority(
        n, [1] * n,
        adversary=ObliviousFlipAdversary(n, budget, seed=5),
        seed=11,
    )
    wrong = sum(1 for v in result.good_outputs().values() if v == 0)
    assert wrong <= n // 20


def test_coin_guessing_adversary_flips_victim_deterministically():
    n = 90
    size = default_sample_size(n)
    result = run_sampled_majority(
        n, [1] * n,
        adversary=CoinGuessingAdversary(
            n, budget=n // 4, victim=0, sample_size=size,
            guessed_seed=3, flip_to=0,
        ),
        sample_size=size, seed=3,
    )
    assert result.outputs[0] == 0  # victim flipped
    others = {
        pid: v for pid, v in result.good_outputs().items() if pid != 0
    }
    assert all(v == 1 for v in others.values())  # everyone else intact


def test_coin_guessing_needs_budget_for_whole_sample():
    with pytest.raises(ValueError):
        CoinGuessingAdversary(
            50, budget=1, victim=0, sample_size=10,
            guessed_seed=0, flip_to=0,
        )


def test_wrong_guess_leaves_victim_correct():
    """Guessing the wrong seed corrupts the wrong peers: attack fails whp."""
    n = 90
    size = default_sample_size(n)
    result = run_sampled_majority(
        n, [1] * n,
        adversary=CoinGuessingAdversary(
            n, budget=n // 4, victim=0, sample_size=size,
            guessed_seed=999, flip_to=0,  # victim actually uses seed=3
        ),
        sample_size=size, seed=3,
    )
    assert result.outputs[0] == 1


def test_guessing_attack_demo_contrast():
    outcome = guessing_attack_demo(n=80, seed=2)
    assert outcome.attack_succeeded
    assert outcome.total_messages < 80 * 80
    assert outcome.oblivious_wrong <= 4


def test_input_validation():
    with pytest.raises(ValueError):
        run_sampled_majority(5, [1, 0])


# -- Holtby-Kapron-King: isolation in the pre-specified-listener model ----------------


def test_isolation_threshold_arithmetic():
    assert isolation_threshold(30, 3) == 10
    assert isolation_threshold(7, 2) == 3
    with pytest.raises(ValueError):
        isolation_threshold(10, 0)
    assert minimum_safe_degree(100, 3, 30) == 11


def test_fault_free_gossip_agrees():
    n = 40
    result = run_listener_gossip(n, [1] * n, listen_degree=5)
    assert result.agreement_value() == 1


def test_gossip_converges_from_lopsided_split():
    n = 40
    inputs = [1] * 32 + [0] * 8
    result = run_listener_gossip(
        n, inputs, listen_degree=9, gossip_rounds=4, seed=2
    )
    outputs = [v for v in result.good_outputs().values() if v is not None]
    assert sum(outputs) >= 0.9 * len(outputs)  # heavy side wins


def test_isolation_succeeds_below_threshold():
    """degree * rounds within budget: the victim is fully surrounded."""
    outcome = isolation_attack_demo(
        n=60, listen_degree=4, gossip_rounds=3, budget=19, seed=1
    )
    assert not outcome.budget_exhausted
    assert outcome.victim_output == 0
    assert outcome.majority_output == 1
    assert outcome.victim_isolated
    assert outcome.corruptions_used <= 12


def test_isolation_fails_above_threshold():
    """degree * rounds exceeding budget: some honest voice gets through.

    With budget 6 and degree 8, at most 6 of the first round's 8 declared
    peers are corrupted, so the victim hears >= 2 honest ones plus its own
    bit and the majority stays honest.
    """
    outcome = isolation_attack_demo(
        n=60, listen_degree=8, gossip_rounds=3, budget=6, seed=1
    )
    assert outcome.budget_exhausted
    assert outcome.victim_output == 1
    assert not outcome.victim_isolated


def test_isolation_budget_sweep_finds_cliff():
    """The attack flips from success to failure as degree crosses budget/rounds."""
    n = 60
    rounds = 2
    budget = 8
    cliff = isolation_threshold(budget, rounds)  # = 4
    below = isolation_attack_demo(
        n=n, listen_degree=cliff, gossip_rounds=rounds,
        budget=budget, seed=3,
    )
    above = isolation_attack_demo(
        n=n, listen_degree=3 * cliff, gossip_rounds=rounds,
        budget=budget, seed=3,
    )
    assert below.victim_isolated
    assert not above.victim_isolated


def test_gossip_input_validation():
    with pytest.raises(ValueError):
        run_listener_gossip(5, [1], listen_degree=2)


def test_isolation_uses_small_budget_fraction():
    """The whole attack costs degree*rounds corruptions, not Theta(n)."""
    n = 200
    outcome = isolation_attack_demo(
        n=n, listen_degree=3, gossip_rounds=3, seed=4
    )
    assert outcome.victim_isolated
    assert outcome.corruptions_used <= 9
