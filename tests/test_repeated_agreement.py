"""Tests for repeated agreement (the replicated-log amortization layer)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.adaptive import TournamentAdversary
from repro.adversary.behaviors import FixedBitBehavior, SilentBehavior
from repro.core.repeated_agreement import (
    ReplicatedLogError,
    ReplicatedLogResult,
    _slot_coin_source,
    _slot_k_sequence,
    run_replicated_log,
    words_per_slot,
)
from repro.core.global_coin import GlobalCoinSubsequence, synthetic_subsequence


N = 27


def unanimous_slots(*bits):
    return [[b] * N for b in bits]


@pytest.fixture(scope="module")
def fault_free_log():
    """One shared three-slot fault-free run (module-scoped: tournaments
    are the expensive part, which is the whole point of this layer)."""
    slots = [[1] * N, [0] * N, [p % 2 for p in range(N)]]
    return slots, run_replicated_log(N, slots, seed=11)


class TestHappyPath:
    def test_every_slot_succeeds(self, fault_free_log):
        _, result = fault_free_log
        assert result.success()

    def test_unanimous_slots_keep_their_bit(self, fault_free_log):
        _, result = fault_free_log
        assert result.bits()[:2] == [1, 0]

    def test_all_slots_valid(self, fault_free_log):
        _, result = fault_free_log
        assert result.all_valid()

    def test_slot_count_matches(self, fault_free_log):
        slots, result = fault_free_log
        assert len(result.slots) == len(slots)
        assert [s.index for s in result.slots] == [0, 1, 2]

    def test_word_segments_disjoint_and_ordered(self, fault_free_log):
        _, result = fault_free_log
        seen = []
        for slot in result.slots:
            seen.extend(slot.word_indices)
        assert seen == sorted(seen)
        assert len(seen) == len(set(seen))
        assert len(seen) == 3 * words_per_slot(6, 2)

    def test_coin_covers_log(self, fault_free_log):
        _, result = fault_free_log
        assert result.coin.length >= 3 * words_per_slot(6, 2)

    def test_marginal_cost_far_below_tournament(self, fault_free_log):
        _, result = fault_free_log
        tournament = result.tournament_max_bits()
        for i in range(len(result.slots)):
            assert result.slot_max_bits(i) < tournament / 10

    def test_amortized_cost_decreases_with_slots(self):
        short = run_replicated_log(N, unanimous_slots(1), seed=13)
        long = run_replicated_log(N, unanimous_slots(1, 1, 1, 1), seed=13)
        assert (
            long.amortized_max_bits_per_slot()
            < short.amortized_max_bits_per_slot()
        )

    def test_deterministic_per_seed(self):
        a = run_replicated_log(N, unanimous_slots(1, 0), seed=5)
        b = run_replicated_log(N, unanimous_slots(1, 0), seed=5)
        assert a.bits() == b.bits()
        assert a.tournament_max_bits() == b.tournament_max_bits()


class TestValidation:
    def test_empty_log_rejected(self):
        with pytest.raises(ReplicatedLogError):
            run_replicated_log(N, [])

    def test_wrong_proposal_length_rejected(self):
        with pytest.raises(ReplicatedLogError, match="slot 1"):
            run_replicated_log(N, [[0] * N, [0] * (N - 1)])

    def test_zero_rounds_rejected(self):
        with pytest.raises(ReplicatedLogError):
            run_replicated_log(N, unanimous_slots(1), aeba_rounds=0)
        with pytest.raises(ReplicatedLogError):
            run_replicated_log(N, unanimous_slots(1), ae2e_loops=0)

    def test_words_per_slot(self):
        assert words_per_slot(6, 2) == 8
        assert words_per_slot(1, 1) == 2


class TestUnderAttack:
    def test_corrupted_run_still_commits(self):
        adversary = TournamentAdversary(N, budget=2, seed=3)
        result = run_replicated_log(
            N, unanimous_slots(1, 0), tournament_adversary=adversary,
            seed=3,
        )
        assert result.success()
        assert result.all_valid()
        assert result.corrupted == adversary.corrupted

    def test_validity_excludes_bad_proposals(self):
        # All good processors propose 1 in both slots; corrupted ones are
        # made to push 0.  Validity must hold w.r.t. good proposals.
        adversary = TournamentAdversary(N, budget=2, seed=7)
        adversary.take_over([0, 1])
        slots = [[1] * N, [1] * N]
        result = run_replicated_log(
            N,
            slots,
            tournament_adversary=adversary,
            slot_behavior=FixedBitBehavior(0),
            seed=7,
        )
        assert result.bits() == [1, 1]
        assert result.all_valid()

    def test_crash_faults_tolerated(self):
        adversary = TournamentAdversary(N, budget=2, seed=9)
        adversary.take_over([3, 4])
        result = run_replicated_log(
            N,
            unanimous_slots(0, 1),
            tournament_adversary=adversary,
            slot_behavior=SilentBehavior(),
            seed=9,
        )
        assert result.success()
        assert result.bits() == [0, 1]


class TestAccountingHelpers:
    def _result_with_ledgers(self):
        slots = unanimous_slots(1)
        return run_replicated_log(N, slots, seed=21)

    def test_slot_ledger_positive(self):
        result = self._result_with_ledgers()
        assert result.slot_max_bits(0) > 0

    def test_amortized_formula(self):
        result = self._result_with_ledgers()
        expected = result.tournament_max_bits() + result.slot_max_bits(0)
        assert result.amortized_max_bits_per_slot() == pytest.approx(
            expected
        )

    def test_empty_log_result_accessors(self):
        result = self._result_with_ledgers()
        empty = ReplicatedLogResult(
            slots=[],
            tournament=result.tournament,
            coin=result.coin,
            inputs=[],
        )
        assert empty.amortized_max_bits_per_slot() == 0.0
        assert empty.success()
        assert empty.all_valid()
        assert empty.bits() == []


class TestSlotHelpers:
    def _coin(self, n=10, length=8, seed=0):
        return synthetic_subsequence(
            n, length=length, good_indices=range(length),
            rng=random.Random(seed),
        )

    def test_coin_source_good_rounds(self):
        coin = self._coin()
        source = _slot_coin_source(coin, 10, [0, 1, 2])
        assert source.num_rounds == 3
        assert source.num_good_rounds() == 3
        for i in range(3):
            assert source.rounds[i].true_bit == coin.truth[i] & 1

    def test_coin_source_split_views_not_good(self):
        coin = self._coin()
        coin.views[0][1] ^= 1  # one processor sees a flipped word
        source = _slot_coin_source(coin, 10, [0, 1])
        assert source.rounds[0].good
        assert not source.rounds[1].good
        assert source.rounds[1].true_bit is None

    def test_coin_source_adversarial_word_not_good(self):
        n = 10
        coin = synthetic_subsequence(
            n, length=4, good_indices=[0, 2, 3],
            rng=random.Random(1), adversary_word=6,
        )
        source = _slot_coin_source(coin, n, [0, 1])
        assert source.rounds[0].good
        # Word 1 is adversarial: unanimous views but not genuinely random.
        assert not source.rounds[1].good

    def test_coin_source_missing_views_default_zero(self):
        coin = GlobalCoinSubsequence(
            views={p: [None] for p in range(4)},
            truth=[7],
            corrupted=set(),
        )
        source = _slot_coin_source(coin, 4, [0])
        assert not source.rounds[0].good
        assert all(source.view(0, p) == 0 for p in range(4))

    def test_k_sequence_in_range(self):
        coin = self._coin(n=100, length=6)
        ks = _slot_k_sequence(coin, range(6), sqrt_n=10)
        assert len(ks) == 6
        assert all(1 <= k <= 10 for k in ks)

    def test_k_sequence_unlearned_defaults_to_one(self):
        coin = GlobalCoinSubsequence(
            views={p: [None] for p in range(4)},
            truth=[7],
            corrupted=set(),
        )
        assert _slot_k_sequence(coin, [0], sqrt_n=5) == [1]


class TestProperties:
    @given(
        aeba_rounds=st.integers(min_value=1, max_value=12),
        ae2e_loops=st.integers(min_value=1, max_value=6),
        num_slots=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_arithmetic(self, aeba_rounds, ae2e_loops, num_slots):
        """Slot word segments tile [0, total) exactly."""
        per = words_per_slot(aeba_rounds, ae2e_loops)
        indices = []
        for i in range(num_slots):
            base = i * per
            indices.extend(range(base, base + per))
        assert indices == list(range(num_slots * per))

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_coin_source_views_are_bits(self, seed):
        coin = synthetic_subsequence(
            8, length=5, good_indices=range(5),
            rng=random.Random(seed),
        )
        source = _slot_coin_source(coin, 8, range(5))
        for r in range(5):
            for p in range(8):
                assert source.view(r, p) in (0, 1)
