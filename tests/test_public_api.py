"""Guards on the public API surface.

The README and examples promise a stable top-level import path; these
tests fail when an ``__all__`` entry goes stale or a subpackage forgets
to re-export something the top level advertises.
"""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.crypto",
    "repro.samplers",
    "repro.topology",
    "repro.net",
    "repro.adversary",
    "repro.baselines",
    "repro.analysis",
    "repro.asynchrony",
    "repro.lowerbounds",
    "repro.mpc",
    "repro.engine",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{name} must declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} is missing"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_unique(name):
    module = importlib.import_module(name)
    exported = module.__all__
    assert len(exported) == len(set(exported))


def test_quickstart_symbols_at_top_level():
    import repro

    for symbol in (
        "run_everywhere_ba",
        "run_almost_everywhere_ba",
        "run_ae_to_everywhere",
        "run_unreliable_coin_ba",
        "run_leader_election",
        "run_replicated_log",
        "ProtocolParameters",
        "Tournament",
    ):
        assert symbol in repro.__all__
        assert callable(getattr(repro, symbol)) or symbol[0].isupper()


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
