"""Tests for the binary wire codec and the buffered frame reader.

Three properties carry the fast data plane:

* **golden frames** — codec 1 output is byte-for-byte the pre-codec
  line protocol, pinned against literal byte strings (and against a
  live worker socket), so no codec change can silently break legacy
  ``repro worker serve`` peers;
* **framing is chunk-agnostic** — the reader reassembles frames from
  any recv segmentation: byte-at-a-time drips, delimiters landing
  mid-chunk, and several frames coalescing into one segment (the
  regression behind the old per-chunk ``endswith(b"\\n")`` bug);
* **bounded and loud** — oversized frames, bad headers, corrupt
  compression and mid-frame EOF each raise one specific error instead
  of hanging, guessing, or growing the buffer without bound.
"""

import json
import struct
import zlib

import pytest

from repro.engine import ExperimentSpec, WireFormatError
from repro.engine.dispatch import MODE_TRIALS, WorkUnit, unit_to_wire
from repro.engine.spec import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODECS,
    WIRE_VERSION,
    codec_name,
    negotiate_codec,
    wire_dumps,
)
from repro.engine.wire import (
    COMPRESS_MIN_BYTES,
    DEFAULT_MAX_FRAME_BYTES,
    FLAG_ZLIB,
    FRAME_MAGIC,
    FRAME_VERSION,
    HEADER_BYTES,
    FrameReader,
    decode_document,
    encode_frame,
)


class FakeSocket:
    """recv() yields the scripted chunks, then EOF forever."""

    def __init__(self, *chunks: bytes) -> None:
        self.chunks = list(chunks)

    def recv(self, _size: int) -> bytes:
        return self.chunks.pop(0) if self.chunks else b""


def _reader(*chunks: bytes, cap: int = DEFAULT_MAX_FRAME_BYTES) -> FrameReader:
    return FrameReader(FakeSocket(*chunks), max_frame_bytes=cap)


_SPEC = ExperimentSpec(runner="vss-coin", n=7, trials=3, seed=42)

#: The legacy line protocol, frozen.  These literals are the bytes the
#: pre-codec client put on the wire for this unit; codec 1 must keep
#: emitting them forever or old workers stop understanding new clients.
_GOLDEN_UNIT_FRAME = (
    b'{"indices":[0,1],"kind":"unit","max_live":null,"mode":"trials",'
    b'"predicted_cost":null,"spec":{"kind":"spec","n":7,"params":[],'
    b'"runner":"vss-coin","seed":42,"trials":3,"version":1},"version":1}\n'
)
_GOLDEN_PING_FRAME = b'{"kind":"ping","version":1}\n'


# -- golden frames: codec 1 is the legacy protocol, byte for byte ----------------------


def test_json_unit_frame_matches_golden_bytes():
    unit = WorkUnit(spec=_SPEC, indices=(0, 1), mode=MODE_TRIALS)
    assert encode_frame(unit_to_wire(unit), CODEC_JSON) == _GOLDEN_UNIT_FRAME


def test_json_ping_frame_matches_golden_bytes():
    assert (
        encode_frame({"version": WIRE_VERSION, "kind": "ping"}, CODEC_JSON)
        == _GOLDEN_PING_FRAME
    )


def test_json_codec_is_exactly_the_line_protocol():
    """codec 1 == wire_dumps + newline for any document, so every
    pre-codec byte-identity argument carries over unchanged."""
    docs = [
        {"version": WIRE_VERSION, "kind": "ping"},
        {"version": WIRE_VERSION, "kind": "error", "error": "ünïcodé 🎲"},
        unit_to_wire(WorkUnit(spec=_SPEC, indices=(2,), mode=MODE_TRIALS)),
    ]
    for doc in docs:
        frame = encode_frame(doc, CODEC_JSON)
        assert frame == (wire_dumps(doc) + "\n").encode("utf-8")
        assert frame.endswith(b"\n") and b"\n" not in frame[:-1]


def test_live_worker_answers_golden_request_with_legacy_bytes():
    """End-to-end byte identity: a raw legacy client (literal golden
    bytes, no codec negotiation) against a binary-capable worker gets
    back exactly the bytes a pre-codec worker produced."""
    import socket

    from repro.engine import WorkerServer
    from repro.engine.dispatch import run_unit_timed, unit_from_wire

    expected_results, _stats = run_unit_timed(
        unit_from_wire(json.loads(_GOLDEN_UNIT_FRAME.decode()))
    )
    from repro.engine.spec import result_to_wire

    expected_frame = encode_frame(
        {
            "version": WIRE_VERSION,
            "kind": "results",
            "results": [result_to_wire(r) for r in expected_results],
        },
        CODEC_JSON,
    )
    # stats=False reproduces the pre-telemetry reply shape.
    with WorkerServer(stats=False) as server:
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(_GOLDEN_UNIT_FRAME)
            got = bytearray()
            while not got.endswith(b"\n"):
                chunk = sock.recv(65536)
                assert chunk, "worker hung up before the reply"
                got.extend(chunk)
    assert bytes(got) == expected_frame


# -- binary codec round trips ----------------------------------------------------------


def test_binary_round_trip_small_payload_uncompressed():
    doc = {"version": WIRE_VERSION, "kind": "ping"}
    frame = encode_frame(doc, CODEC_BINARY)
    magic, version, flags, reserved, length = struct.unpack(
        ">BBBBI", frame[:HEADER_BYTES]
    )
    assert (magic, version, flags, reserved) == (
        FRAME_MAGIC, FRAME_VERSION, 0, 0,
    )
    assert length == len(frame) - HEADER_BYTES
    raw = _reader(frame).read_frame()
    assert raw.codec == CODEC_BINARY
    assert raw.size == len(frame)
    assert decode_document(raw.payload) == doc


def test_binary_round_trip_large_payload_compressed():
    doc = {
        "version": WIRE_VERSION,
        "kind": "error",
        "error": "x" * (4 * COMPRESS_MIN_BYTES),
    }
    frame = encode_frame(doc, CODEC_BINARY)
    assert frame[2] & FLAG_ZLIB
    assert len(frame) < len(encode_frame(doc, CODEC_JSON))
    raw = _reader(frame).read_frame()
    assert decode_document(raw.payload) == doc


def test_binary_compression_can_be_disabled():
    doc = {"version": WIRE_VERSION, "kind": "error", "error": "y" * 2048}
    frame = encode_frame(doc, CODEC_BINARY, compress_min=None)
    assert not frame[2] & FLAG_ZLIB
    assert decode_document(_reader(frame).read_frame().payload) == doc


def test_incompressible_payload_ships_uncompressed():
    """When deflate does not shrink the payload the flag stays clear —
    the reader must never pay decompression for nothing."""
    import random

    noise = "".join(
        random.Random(7).choice("0123456789abcdef") for _ in range(2048)
    )
    doc = {"version": WIRE_VERSION, "kind": "error", "error": noise}
    frame = encode_frame(doc, CODEC_BINARY)
    if not frame[2] & FLAG_ZLIB:  # hex noise may still deflate slightly
        assert len(frame) <= HEADER_BYTES + len(wire_dumps(doc).encode())
    assert decode_document(_reader(frame).read_frame().payload) == doc


def test_unknown_codec_rejected_on_encode():
    with pytest.raises(WireFormatError, match="codec"):
        encode_frame({"version": WIRE_VERSION, "kind": "ping"}, 99)


def test_frame_magic_never_begins_a_json_document():
    """The dispatch property behind per-frame codec detection."""
    assert FRAME_MAGIC > 0x7F  # outside ASCII entirely


# -- the buffered reader: chunk-agnostic framing ---------------------------------------


def test_reader_handles_byte_at_a_time_delivery():
    doc = {"version": WIRE_VERSION, "kind": "ping"}
    for codec in SUPPORTED_CODECS:
        frame = encode_frame(doc, codec)
        reader = _reader(*[frame[i:i + 1] for i in range(len(frame))])
        assert decode_document(reader.read_frame().payload) == doc
        assert reader.read_frame() is None


def test_reader_handles_coalesced_frames_in_one_chunk():
    """The regression the old per-chunk endswith(b"\\n") check had:
    two frames arriving in one recv must decode as two frames, with
    the trailing bytes preserved across read_frame calls."""
    first = {"version": WIRE_VERSION, "kind": "ping"}
    second = {"version": WIRE_VERSION, "kind": "error", "error": "late"}
    reader = _reader(
        encode_frame(first, CODEC_JSON) + encode_frame(second, CODEC_JSON)
    )
    assert decode_document(reader.read_frame().payload) == first
    assert decode_document(reader.read_frame().payload) == second
    assert reader.read_frame() is None


def test_reader_handles_delimiter_landing_mid_chunk():
    """A newline mid-chunk plus a partial next frame: the old reader
    either stalled or corrupted; the buffered one yields both frames."""
    first = encode_frame({"version": WIRE_VERSION, "kind": "ping"}, CODEC_JSON)
    second = encode_frame(
        {"version": WIRE_VERSION, "kind": "pong"}, CODEC_JSON
    )
    split = len(second) // 2
    reader = _reader(first + second[:split], second[split:])
    assert decode_document(reader.read_frame().payload)["kind"] == "ping"
    assert decode_document(reader.read_frame().payload)["kind"] == "pong"


def test_reader_interleaves_codecs_on_one_stream():
    """Codec detection is per frame — exactly what the negotiation
    hand-off needs (the hello-ok travels under the old codec, the next
    frame under the new one)."""
    a = {"version": WIRE_VERSION, "kind": "ping"}
    b = {"version": WIRE_VERSION, "kind": "pong"}
    reader = _reader(
        encode_frame(a, CODEC_JSON)
        + encode_frame(b, CODEC_BINARY)
        + encode_frame(a, CODEC_JSON)
    )
    assert reader.read_frame().codec == CODEC_JSON
    assert reader.read_frame().codec == CODEC_BINARY
    assert reader.read_frame().codec == CODEC_JSON
    assert reader.read_frame() is None


def test_reader_counts_wire_bytes_per_frame():
    doc = {"version": WIRE_VERSION, "kind": "ping"}
    for codec in SUPPORTED_CODECS:
        frame = encode_frame(doc, codec)
        assert _reader(frame).read_frame().size == len(frame)


# -- bounded and loud ------------------------------------------------------------------


def test_clean_eof_at_boundary_returns_none():
    assert _reader().read_frame() is None


def test_eof_mid_frame_raises_connection_error():
    frame = encode_frame({"version": WIRE_VERSION, "kind": "ping"}, CODEC_BINARY)
    with pytest.raises(ConnectionError, match="mid-frame"):
        _reader(frame[: HEADER_BYTES + 2]).read_frame()
    with pytest.raises(ConnectionError, match="mid-frame"):
        _reader(b'{"version":1,"kind":"ping"').read_frame()


def test_oversized_binary_frame_rejected_naming_the_cap():
    header = struct.pack(
        ">BBBBI", FRAME_MAGIC, FRAME_VERSION, 0, 0, 1 << 20
    )
    with pytest.raises(WireFormatError, match="4096-byte frame cap"):
        _reader(header, cap=4096).read_frame()


def test_oversized_json_line_rejected_naming_the_cap():
    with pytest.raises(WireFormatError, match="4096-byte frame cap"):
        _reader(*[b"x" * 1024] * 8, cap=4096).read_frame()


def test_zlib_bomb_rejected_after_decompression():
    """A small compressed frame hiding an oversized payload is caught
    on the decompressed size, not just the length prefix."""
    payload = zlib.compress(b" " * (1 << 20))
    frame = (
        struct.pack(
            ">BBBBI", FRAME_MAGIC, FRAME_VERSION, FLAG_ZLIB, 0, len(payload)
        )
        + payload
    )
    with pytest.raises(WireFormatError, match="decompressed"):
        _reader(frame, cap=65536).read_frame()


def test_corrupt_compressed_payload_rejected():
    junk = b"\x00not-zlib\xff"
    frame = (
        struct.pack(
            ">BBBBI", FRAME_MAGIC, FRAME_VERSION, FLAG_ZLIB, 0, len(junk)
        )
        + junk
    )
    with pytest.raises(WireFormatError, match="corrupt compressed"):
        _reader(frame).read_frame()


def test_unsupported_frame_version_rejected():
    frame = struct.pack(">BBBBI", FRAME_MAGIC, FRAME_VERSION + 1, 0, 0, 2)
    with pytest.raises(WireFormatError, match="frame version"):
        _reader(frame + b"{}").read_frame()


def test_non_utf8_payload_rejected():
    with pytest.raises(WireFormatError, match="not UTF-8"):
        decode_document(b"\xff\xfe{}")


def test_reader_rejects_unusable_cap():
    with pytest.raises(WireFormatError, match="max_frame_bytes"):
        FrameReader(FakeSocket(), max_frame_bytes=HEADER_BYTES)


# -- codec negotiation -----------------------------------------------------------------


def test_negotiate_codec_prefers_binary():
    assert negotiate_codec([CODEC_BINARY, CODEC_JSON]) == CODEC_BINARY
    assert negotiate_codec([CODEC_JSON, CODEC_BINARY]) == CODEC_BINARY
    assert negotiate_codec(list(SUPPORTED_CODECS)) == CODEC_BINARY


def test_negotiate_codec_falls_back_to_json():
    # Disjoint, empty, malformed, or boolean-polluted offers all land
    # on the universally-understood codec instead of raising.
    assert negotiate_codec([CODEC_JSON]) == CODEC_JSON
    assert negotiate_codec([99, 100]) == CODEC_JSON
    assert negotiate_codec([]) == CODEC_JSON
    assert negotiate_codec(None) == CODEC_JSON
    assert negotiate_codec("binary") == CODEC_JSON
    assert negotiate_codec([True, False]) == CODEC_JSON


def test_codec_names():
    assert codec_name(CODEC_JSON) == "json"
    assert codec_name(CODEC_BINARY) == "binary"
    assert "3" in codec_name(3)  # unknown ids still render
