"""Tests for the execution-trace recorder."""

import pytest

from repro.net.tracing import TraceEvent, TraceRecorder, null_emit


class TestRecorder:
    def test_emit_and_count(self):
        rec = TraceRecorder()
        rec.emit("corrupt", 5)
        rec.emit("corrupt", 6)
        rec.emit("decide", 1, detail=0)
        assert rec.count("corrupt") == 2
        assert rec.count("decide") == 1
        assert rec.count("other") == 0

    def test_round_tagging(self):
        rec = TraceRecorder()
        rec.set_round(3)
        rec.emit("phase", "expose")
        assert rec.events("phase")[0].round_no == 3

    def test_capacity_bounded_but_counts_exact(self):
        rec = TraceRecorder(capacity=5)
        for i in range(20):
            rec.emit("tick", i)
        assert len(rec.events()) == 5
        assert rec.count("tick") == 20
        assert rec.events()[0].subject == "15"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_last(self):
        rec = TraceRecorder()
        rec.emit("a", 1)
        rec.emit("b", 2)
        rec.emit("a", 3)
        assert rec.last("a").subject == "3"
        assert rec.last("missing") is None

    def test_rounds_spanned(self):
        rec = TraceRecorder()
        assert rec.rounds_spanned() == (0, 0)
        rec.set_round(2)
        rec.emit("x")
        rec.set_round(7)
        rec.emit("y")
        assert rec.rounds_spanned() == (2, 7)

    def test_filtered_events(self):
        rec = TraceRecorder()
        rec.emit("a")
        rec.emit("b")
        assert len(rec.events("a")) == 1
        assert len(rec.events()) == 2


class TestRendering:
    def test_summary_ordering(self):
        rec = TraceRecorder()
        for _ in range(3):
            rec.emit("common")
        rec.emit("rare")
        lines = rec.summary().splitlines()
        assert "common" in lines[0]
        assert "rare" in lines[1]

    def test_timeline_filters_and_truncates(self):
        rec = TraceRecorder()
        rec.set_round(1)
        for i in range(12):
            rec.emit("evt", i)
        rec.emit("skip", 99)
        text = rec.timeline(kinds=["evt"])
        assert "round    1" in text
        assert "+4 more" in text
        assert "skip" not in text

    def test_null_emit_is_noop(self):
        assert null_emit("anything", 1, {"x": 2}) is None


class TestSimulatorIntegration:
    def test_corruptions_traced(self):
        from repro.adversary.behaviors import SilentBehavior
        from repro.adversary.static import StaticByzantineAdversary
        from repro.net.simulator import SyncNetwork
        from tests.test_net import EchoProtocol

        n = 4
        recorder = TraceRecorder()
        adversary = StaticByzantineAdversary(n, {0, 2}, SilentBehavior())
        net = SyncNetwork(
            [EchoProtocol(p, n) for p in range(n)],
            adversary,
            trace=recorder,
        )
        net.run(max_rounds=3)
        assert recorder.count("corrupt") == 2
        assert {e.subject for e in recorder.events("corrupt")} == {"0", "2"}
        assert recorder.events("corrupt")[0].round_no == 1
