"""Unit tests for protocol parameter derivation."""

import math

import pytest

from repro.core.parameters import ParameterError, ProtocolParameters, log2n


class TestConstruction:
    def test_defaults_valid(self):
        params = ProtocolParameters(n=100)
        assert params.n == 100

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(n=0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(n=10, epsilon=0.5)
        with pytest.raises(ParameterError):
            ProtocolParameters(n=10, epsilon=0.0)

    def test_rejects_bad_q(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(n=10, q=1)

    def test_rejects_no_winners(self):
        with pytest.raises(ParameterError):
            ProtocolParameters(n=10, winners_per_election=0)


class TestPresets:
    def test_paper_formulas(self):
        n = 1 << 20
        params = ProtocolParameters.paper(n, delta=5.0)
        ln = log2n(n)
        assert params.q == round(ln**5)
        assert params.k1 == round(ln**3)
        assert params.winners_per_election == round(5 * ln**3)

    def test_paper_threshold_is_half(self):
        params = ProtocolParameters.paper(1 << 20)
        assert params.share_threshold_fraction == 0.5

    def test_simulation_scales_gently(self):
        small = ProtocolParameters.simulation(27)
        large = ProtocolParameters.simulation(2048)
        assert small.k1 <= large.k1
        assert small.uplink_degree <= large.uplink_degree

    def test_simulation_nondegenerate(self):
        for n in (9, 27, 81, 243, 1000):
            params = ProtocolParameters.simulation(n)
            assert params.q >= 2
            assert params.k1 >= 4
            assert params.winners_per_election >= 1


class TestDerived:
    def test_corruption_budget(self):
        params = ProtocolParameters(n=120, epsilon=1 / 12)
        assert params.corruption_budget == int((1 / 3 - 1 / 12) * 120)

    def test_good_node_threshold(self):
        params = ProtocolParameters(n=100, epsilon=0.06)
        assert params.good_node_threshold == pytest.approx(2 / 3 + 0.03)

    def test_candidates_level2_is_q(self):
        params = ProtocolParameters(n=100, q=4)
        assert params.candidates_per_election(2) == 4

    def test_candidates_higher_levels(self):
        params = ProtocolParameters(n=100, q=4, winners_per_election=3)
        assert params.candidates_per_election(3) == 12

    def test_candidates_level1_rejected(self):
        params = ProtocolParameters(n=100)
        with pytest.raises(ParameterError):
            params.candidates_per_election(1)

    def test_num_bins_at_least_two(self):
        params = ProtocolParameters(n=100, q=2, winners_per_election=2)
        assert params.num_bins(2) >= 2

    def test_num_bins_ratio(self):
        params = ProtocolParameters(n=100, q=8, winners_per_election=2)
        # r = 16, w = 2 -> 8 bins at level 3.
        assert params.num_bins(3) == 8

    def test_block_words(self):
        params = ProtocolParameters(n=100, q=3, winners_per_election=2)
        assert params.block_words(2) == 1 + 3
        assert params.block_words(3) == 1 + 6

    def test_sqrt_n(self):
        assert ProtocolParameters(n=100).sqrt_n() == 10
        assert ProtocolParameters(n=101).sqrt_n() == 11
        assert ProtocolParameters(n=1).sqrt_n() == 1

    def test_request_fanout_positive(self):
        params = ProtocolParameters(n=64, request_fanout_a=4.0)
        assert params.request_fanout() == round(4 * 6)

    def test_overload_limit(self):
        params = ProtocolParameters(n=64)
        assert params.overload_limit() == round(8 * 6)

    def test_with_overrides(self):
        params = ProtocolParameters(n=64)
        tweaked = params.with_overrides(q=7)
        assert tweaked.q == 7
        assert tweaked.n == 64
        assert params.q != 7 or params.q == 7  # original untouched
        assert params is not tweaked


def test_log2n_floor():
    assert log2n(1) == 2.0
    assert log2n(2) == 2.0
    assert log2n(1024) == 10.0
