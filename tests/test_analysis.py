"""Tests for cost models and concentration bounds."""

import math
import random

import pytest

from repro.analysis.bounds import (
    binomial_tail_at_least,
    chernoff_above,
    chernoff_below,
    lemma4_failure_probability,
    lemma6_good_array_bound,
    lemma7_loop_failure,
    lemma8_failure_probability,
    lemma9_overload_probability,
    lemma10_total_failure,
    theorem5_failure_probability,
)
from repro.analysis.costmodel import (
    ae_to_everywhere_cost,
    aeba_asymptotic_exponent,
    aeba_bits_per_processor_paper,
    aeba_cost_paper,
    benor_bits_per_processor,
    crossover_point,
    everywhere_ba_bits_per_processor,
    everywhere_ba_bits_simulation,
    phase_king_bits_per_processor,
    rabin_bits_per_processor,
)
from repro.core.parameters import ProtocolParameters


class TestChernoff:
    def test_bounds_above_exact_tail(self):
        """The Chernoff bound must dominate the exact binomial tail."""
        n, p = 200, 0.5
        mean = n * p
        for factor in (0.1, 0.2, 0.4):
            k = math.ceil((1 + factor) * mean)
            exact = binomial_tail_at_least(n, p, k)
            assert exact <= chernoff_above(mean, factor) + 1e-12

    def test_below_bound_behaviour(self):
        assert chernoff_below(100, 0.5) < chernoff_below(100, 0.1)
        with pytest.raises(ValueError):
            chernoff_below(10, 0)
        with pytest.raises(ValueError):
            chernoff_above(10, -1)

    def test_binomial_tail_edges(self):
        assert binomial_tail_at_least(10, 0.5, 0) == 1.0
        assert binomial_tail_at_least(10, 0.5, 11) == 0.0
        assert binomial_tail_at_least(10, 1.0, 10) == pytest.approx(1.0)


class TestLemmaBounds:
    def test_lemma8_shrinks_with_a(self):
        # The bound is vacuous (capped at 1) for small a — use the regime
        # the paper intends: a = 32c/eps^2.
        small = lemma8_failure_probability(1 << 20, 0.3, a=2_000)
        large = lemma8_failure_probability(1 << 20, 0.3, a=20_000)
        assert large < small < 1.0

    def test_lemma9_shrinks_with_n(self):
        # 4/(eps log n) < 1 only once log n > 4/eps.
        assert lemma9_overload_probability(0.3, 1 << 60) < (
            lemma9_overload_probability(0.3, 1 << 20)
        )

    def test_lemma7_combines(self):
        assert lemma7_loop_failure(0.1, 1 << 20) <= 1.0

    def test_lemma10_power(self):
        single = lemma7_loop_failure(0.1, 1 << 20)
        assert lemma10_total_failure(0.1, 1 << 20, 10) == pytest.approx(
            single**10
        )

    def test_theorem5_needs_good_rounds(self):
        few = theorem5_failure_probability(1000, 1)
        many = theorem5_failure_probability(1000, 30)
        assert many < few

    def test_lemma4_bound(self):
        assert lemma4_failure_probability(300, 10) < 1e-5
        with pytest.raises(ValueError):
            lemma4_failure_probability(10, 0)

    def test_lemma6_bound_decays_linearly(self):
        n = 1 << 30
        assert lemma6_good_array_bound(1, n) > lemma6_good_array_bound(5, n)
        assert lemma6_good_array_bound(100, 4) == 0.0


class TestCostModels:
    def test_aeba_exponent(self):
        assert aeba_asymptotic_exponent(5.0) == pytest.approx(0.8)
        assert aeba_asymptotic_exponent(8.0) == pytest.approx(0.5)

    def test_aeba_cost_sublinear_exponent(self):
        """Theorem 2: bits/processor ~ n^{4/delta} — measure the slope.

        The paper's polylog factors (w^2 q^3 alone is log^{6+3delta} n)
        dominate until log n exceeds several hundred, so the slope test
        runs in the genuinely asymptotic regime.
        """
        delta = 8.0
        n1, n2 = 1 << 600, 1 << 720
        c1 = aeba_bits_per_processor_paper(n1, delta=delta)
        c2 = aeba_bits_per_processor_paper(n2, delta=delta)
        slope = math.log(c2 / c1) / math.log(n2 / n1)
        # Exponent approaches 4/delta = 0.5 up to polylog noise.
        assert slope < 0.85

    def test_aeba_breakdown_dominated_by_replication(self):
        breakdown = aeba_cost_paper(1 << 600, delta=5.0)
        assert breakdown.phases["share_replication"] == max(
            breakdown.phases.values()
        )

    def test_ae2e_cost_scales_sqrt(self):
        p1 = ProtocolParameters.simulation(1 << 10)
        p2 = ProtocolParameters.simulation(1 << 14)
        c1 = ae_to_everywhere_cost(p1, loops=1).total
        c2 = ae_to_everywhere_cost(p2, loops=1).total
        slope = math.log(c2 / c1) / math.log((1 << 14) / (1 << 10))
        assert 0.4 < slope < 0.8

    def test_everywhere_vs_baselines_crossover(self):
        """E12's headline: our curve crosses below the quadratic
        baselines and stays below (simulation-constant model)."""
        ours = everywhere_ba_bits_simulation
        cross_pk = crossover_point(
            ours, phase_king_bits_per_processor, hi=1 << 30
        )
        assert cross_pk is not None
        # Past the crossover we stay cheaper.
        for n in (cross_pk * 4, cross_pk * 64):
            assert ours(n) < phase_king_bits_per_processor(n)

    def test_paper_constants_crossover_is_astronomical(self):
        """Taking the asymptotic parameters literally, the crossover only
        happens at absurd n — an honest observation about the constants
        (and why the simulation preset exists)."""
        ours = lambda n: everywhere_ba_bits_per_processor(n, delta=8.0)
        assert crossover_point(
            ours, phase_king_bits_per_processor, hi=1 << 40
        ) is None

    def test_rabin_linear(self):
        assert rabin_bits_per_processor(2000) == pytest.approx(
            2 * rabin_bits_per_processor(1000), rel=0.01
        )

    def test_benor_explodes(self):
        cheap = benor_bits_per_processor(1000, fault_fraction=0.01)
        dear = benor_bits_per_processor(1000, fault_fraction=0.3)
        assert dear > 100 * cheap

    def test_crossover_none_when_never_cheaper(self):
        a = lambda n: float(n * n)
        b = lambda n: float(n)
        assert crossover_point(a, b, lo=4, hi=1 << 20) is None

    def test_crossover_immediate(self):
        a = lambda n: float(n)
        b = lambda n: float(n * n)
        assert crossover_point(a, b, lo=4, hi=1 << 20) == 4


class TestReplicatedLogModel:
    def test_marginal_grows_sublinearly(self):
        from repro.analysis.costmodel import replicated_log_marginal_bits

        small = replicated_log_marginal_bits(1 << 10)
        large = replicated_log_marginal_bits(1 << 20)
        # 1024x more processors, far less than 1024x more bits.
        assert large < 1024 * small / 4

    def test_amortized_decreases_with_slots(self):
        from repro.analysis.costmodel import replicated_log_amortized_bits

        costs = [
            replicated_log_amortized_bits(81, slots)
            for slots in (1, 2, 4, 8, 64)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_amortized_approaches_marginal(self):
        from repro.analysis.costmodel import (
            replicated_log_amortized_bits,
            replicated_log_marginal_bits,
        )

        marginal = replicated_log_marginal_bits(81)
        amortized = replicated_log_amortized_bits(81, slots=10_000)
        assert amortized == pytest.approx(marginal, rel=0.05)

    def test_invalid_slots_rejected(self):
        from repro.analysis.costmodel import replicated_log_amortized_bits

        with pytest.raises(ValueError):
            replicated_log_amortized_bits(81, slots=0)

    def test_marginal_beats_phase_king_at_scale(self):
        from repro.analysis.costmodel import (
            phase_king_bits_per_processor,
            replicated_log_marginal_bits,
        )

        n = 1 << 14
        assert replicated_log_marginal_bits(n) < (
            phase_king_bits_per_processor(n) / 10
        )

    def test_sparse_aeba_model_matches_degree(self):
        from repro.analysis.costmodel import sparse_aeba_bits_per_processor
        from repro.topology.sparse_graph import theorem5_degree

        n, rounds = 100, 5
        assert sparse_aeba_bits_per_processor(n, rounds=rounds) == (
            theorem5_degree(n) * rounds
        )
