"""Tests for universe reduction (the abstract's companion result)."""

import random

import pytest

from repro.adversary.adaptive import BinStuffingAdversary
from repro.core.global_coin import synthetic_subsequence
from repro.core.parameters import ProtocolParameters
from repro.core.universe_reduction import (
    CommitteeResult,
    UniverseReductionError,
    committee_size_for,
    reduce_universe,
    run_universe_reduction,
    sample_committee_from_words,
)


class TestSampling:
    def test_basic_sampling(self):
        committee = sample_committee_from_words([3, 7, 11], 10, 3)
        assert committee == [3, 7, 1]

    def test_duplicates_skipped(self):
        committee = sample_committee_from_words([3, 13, 7], 10, 2)
        assert committee == [3, 7]

    def test_too_few_words_raises(self):
        with pytest.raises(UniverseReductionError):
            sample_committee_from_words([1, 11], 10, 2)

    def test_deterministic(self):
        rng = random.Random(1)
        words = [rng.randrange(1000) for _ in range(20)]
        a = sample_committee_from_words(words, 50, 5)
        b = sample_committee_from_words(words, 50, 5)
        assert a == b

    def test_committee_size_polylog(self):
        assert committee_size_for(16) < committee_size_for(1 << 20)
        assert committee_size_for(1 << 20) < 1 << 12


class TestReduceFromSyntheticCoin:
    def test_representative_committee(self):
        n = 200
        rng = random.Random(11)
        seq = synthetic_subsequence(
            n, length=60, good_indices=range(60), rng=rng,
            confused_fraction=0.02,
        )
        corrupted = set(rng.sample(range(n), 50))  # 25%
        seq.corrupted = corrupted
        result = reduce_universe(seq, n, committee_size=20)
        assert len(result.committee) == 20
        assert result.bad_fraction_population == pytest.approx(0.25)
        # Uniform sampling: committee bad fraction concentrates; allow a
        # generous slack for one sample.
        assert result.representative(slack=0.2)

    def test_agreement_tracks_views(self):
        n = 100
        rng = random.Random(12)
        seq = synthetic_subsequence(
            n, length=40, good_indices=range(40), rng=rng,
            confused_fraction=0.0,
        )
        result = reduce_universe(seq, n, committee_size=10)
        assert result.agreement_fraction == 1.0

    def test_confusion_lowers_agreement(self):
        n = 100
        rng = random.Random(13)
        seq = synthetic_subsequence(
            n, length=40, good_indices=range(40), rng=rng,
            confused_fraction=0.3,
        )
        result = reduce_universe(seq, n, committee_size=10)
        assert result.agreement_fraction < 1.0


class TestEndToEnd:
    def test_fault_free_reduction(self):
        n = 27
        result = run_universe_reduction(n, committee_size=6, seed=31)
        assert len(result.committee) == 6
        assert result.agreement_fraction >= 0.9
        assert result.bad_fraction_committee == 0.0

    def test_under_adversary(self):
        n = 27
        adversary = BinStuffingAdversary(n, budget=3, seed=32)
        result = run_universe_reduction(
            n, committee_size=6, adversary=adversary, seed=33
        )
        assert len(result.committee) == 6
        # The descriptor is still widely agreed.
        assert result.agreement_fraction >= 0.7
