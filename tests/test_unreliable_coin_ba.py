"""Tests for Algorithm 5: AEBA with unreliable global coins (Theorem 5)."""

import random

import pytest

from repro.adversary.behaviors import (
    AntiMajorityBehavior,
    EquivocatingBehavior,
    SilentBehavior,
)
from repro.adversary.static import StaticByzantineAdversary
from repro.core.coins import perfect_coin_source, unreliable_coin_source
from repro.core.unreliable_coin_ba import (
    aeba_vote_update,
    majority_and_fraction,
    run_aeba_dataflow,
    run_unreliable_coin_ba,
    vote_threshold,
)


class TestPureFunctions:
    def test_majority_empty(self):
        assert majority_and_fraction([]) == (0, 0.0)

    def test_majority_basic(self):
        assert majority_and_fraction([1, 1, 0]) == (1, pytest.approx(2 / 3))

    def test_majority_tie_prefers_one(self):
        maj, frac = majority_and_fraction([0, 1])
        assert maj == 1
        assert frac == 0.5

    def test_threshold_formula(self):
        assert vote_threshold(0.1, 0.0) == pytest.approx(2 / 3 + 0.05)
        assert vote_threshold(0.1, 0.1) < vote_threshold(0.1, 0.0)

    def test_update_takes_majority_above_threshold(self):
        votes = [1] * 9 + [0]
        assert aeba_vote_update(0, votes, coin=0, threshold=0.7) == 1

    def test_update_takes_coin_below_threshold(self):
        votes = [1] * 5 + [0] * 5
        assert aeba_vote_update(1, votes, coin=0, threshold=0.7) == 0
        assert aeba_vote_update(0, votes, coin=1, threshold=0.7) == 1


class TestFaultFree:
    def test_validity_unanimous_input(self):
        """All good processors start with b -> all commit b."""
        n = 40
        source = perfect_coin_source(n, 6, random.Random(0))
        for bit in (0, 1):
            result = run_unreliable_coin_ba(
                n, [bit] * n, source, seed=1
            )
            assert result.agreement_fraction() == 1.0
            assert result.agreed_bit() == bit

    def test_split_inputs_converge_with_good_coins(self):
        n = 40
        source = perfect_coin_source(n, 8, random.Random(1))
        result = run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)], source, seed=2
        )
        assert result.agreement_fraction() >= 0.95

    def test_bit_budget_sublinear_total(self):
        """Each processor sends O(log^2 n) bits — degree x rounds votes."""
        n = 60
        source = perfect_coin_source(n, 6, random.Random(2))
        result = run_unreliable_coin_ba(n, [1] * n, source, seed=3)
        # degree ~ 4 log n = 24, 6+1 rounds, ~49 bits/vote message: the
        # budget is polylogarithmic per round, far below all-to-all.
        degree_bound = 4 * 6  # 4 log2(60) rounded up
        assert result.max_bits_per_processor < degree_bound * 7 * 60
        # And strictly below what one all-to-all round would cost.
        assert result.max_bits_per_processor < (n - 1) * 49 * 7


class TestAgainstAdversaries:
    def test_anti_majority_with_good_coins(self):
        n = 60
        source = perfect_coin_source(n, 10, random.Random(3))
        targets = set(range(0, n, 5))  # 20%
        adversary = StaticByzantineAdversary(
            n, targets, AntiMajorityBehavior(), seed=4
        )
        result = run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)], source, adversary=adversary,
            seed=5,
        )
        assert result.agreement_fraction() >= 0.9

    def test_validity_holds_under_attack(self):
        n = 60
        source = perfect_coin_source(n, 8, random.Random(4))
        targets = set(range(12))
        adversary = StaticByzantineAdversary(
            n, targets, EquivocatingBehavior(), seed=5
        )
        result = run_unreliable_coin_ba(
            n, [1] * n, source, adversary=adversary, seed=6
        )
        # All good inputs are 1: the unique valid output is 1.  Theorem 5
        # promises all but C2 n / log n processors agree — at n = 60 that
        # allows a ~log-fraction of stragglers.
        assert result.agreed_bit() == 1
        assert result.agreement_fraction() >= 0.75

    def test_silent_faults_harmless(self):
        n = 40
        source = perfect_coin_source(n, 6, random.Random(5))
        adversary = StaticByzantineAdversary(
            n, set(range(8)), SilentBehavior(), seed=6
        )
        result = run_unreliable_coin_ba(
            n, [0] * n, source, adversary=adversary, seed=7
        )
        assert result.agreed_bit() == 0
        assert result.agreement_fraction() >= 0.95

    def test_unreliable_coins_still_converge(self):
        """Theorem 5: only *some* good coin rounds are needed."""
        n = 60
        source = unreliable_coin_source(
            n, 10, good_round_indices=[3, 5, 7, 9],
            confused_fraction=0.05, rng=random.Random(6),
        )
        adversary = StaticByzantineAdversary(
            n, set(range(10)), AntiMajorityBehavior(), seed=7
        )
        result = run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)], source, adversary=adversary,
            seed=8,
        )
        assert result.agreement_fraction() >= 0.9


class TestDataflowVariant:
    def test_matches_semantics(self):
        """The fast dataflow execution also converges and respects validity."""
        members = list(range(30))
        neighbors = {
            m: [(m + d) % 30 for d in (1, 2, 3, 28, 29, 27)] for m in members
        }
        votes = run_aeba_dataflow(
            members=members,
            inputs={m: 1 for m in members},
            neighbors=neighbors,
            coin_views=lambda r, p: 0,
            num_rounds=5,
            bad_members=set(),
            bad_vote_fn=lambda r, p, v: 0,
            threshold=0.7,
        )
        assert all(v == 1 for v in votes.values())

    def test_traffic_callback_invoked(self):
        members = list(range(6))
        neighbors = {m: [(m + 1) % 6] for m in members}
        calls = []
        run_aeba_dataflow(
            members, {m: 0 for m in members}, neighbors,
            coin_views=lambda r, p: 0, num_rounds=2,
            bad_members=set(), bad_vote_fn=lambda r, p, v: 0,
            threshold=0.7,
            on_traffic=lambda s, r, b: calls.append((s, r, b)),
        )
        assert len(calls) == 6 * 2

    def test_bad_members_excluded_from_output(self):
        members = list(range(10))
        neighbors = {m: [(m + 1) % 10, (m - 1) % 10] for m in members}
        votes = run_aeba_dataflow(
            members, {m: 1 for m in members}, neighbors,
            coin_views=lambda r, p: 0, num_rounds=3,
            bad_members={0, 1}, bad_vote_fn=lambda r, p, v: 0,
            threshold=0.7,
        )
        assert set(votes) == set(range(2, 10))


class TestInputValidation:
    def test_wrong_input_length(self):
        source = perfect_coin_source(4, 2, random.Random(0))
        with pytest.raises(ValueError):
            run_unreliable_coin_ba(4, [1, 0], source)
