"""Property tests: cached kernels == naive reference implementations.

The plan kernels in :mod:`repro.crypto.kernels` are the hot path of
every reconstruction in the library; these tests pin them bit-identical
to the reference functions in :mod:`repro.crypto.polynomial` over random
degrees, grids and fields, and pin the cache semantics (duplicate-x
rejection, cross-field key separation, bounded growth) plus the
simulator fast paths that ride along in this PR.
"""

import random

import pytest

from repro.crypto import kernels
from repro.crypto.field import (
    DEFAULT_FIELD,
    MERSENNE_31,
    MERSENNE_61,
    FieldError,
    PrimeField,
)
from repro.crypto.kernels import (
    EvalPlan,
    InterpPlan,
    clear_plan_caches,
    get_eval_plan,
    get_interp_plan,
)
from repro.crypto.polynomial import (
    evaluate,
    evaluate_many,
    interpolate_constant,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at,
)

FIELDS = (PrimeField(257), PrimeField(MERSENNE_31), PrimeField(MERSENNE_61))


def _random_case(field, rng, max_k=12):
    k = rng.randrange(1, max_k)
    universe = min(field.modulus, 1 << 20)
    xs = rng.sample(range(universe), k)
    coefficients = [rng.randrange(field.modulus) for _ in range(k)]
    ys = evaluate_many(field, coefficients, xs)
    return xs, coefficients, ys


# -- plan == naive, property style ---------------------------------------------------


def test_eval_plan_matches_evaluate_many_over_random_cases():
    rng = random.Random(101)
    for field in FIELDS:
        for _ in range(60):
            xs, coefficients, ys = _random_case(field, rng)
            assert EvalPlan(field, xs).evaluate(coefficients) == ys
            assert kernels.evaluate_on(field, coefficients, xs) == ys


def test_interp_plan_matches_lagrange_over_random_cases():
    rng = random.Random(202)
    for field in FIELDS:
        for _ in range(60):
            xs, coefficients, ys = _random_case(field, rng)
            points = list(zip(xs, ys))
            plan = InterpPlan(field, xs)
            # Off-grid, on-grid, and zero evaluation points.
            probes = [rng.randrange(1 << 20), rng.choice(xs), 0]
            for x in probes:
                expected = lagrange_interpolate_at(field, points, x)
                assert plan.interpolate_at(x, ys) == expected
                assert kernels.interpolate_at(field, points, x) == expected
                assert expected == evaluate(field, coefficients, x)
            assert plan.constant(ys) == interpolate_constant(field, points)


def test_lambdas_at_zero_matches_reference():
    rng = random.Random(303)
    for field in FIELDS:
        for _ in range(30):
            xs, _coefficients, _ys = _random_case(field, rng)
            assert list(kernels.lambdas_at_zero(field, xs)) == (
                lagrange_coefficients_at_zero(field, xs)
            )


def test_power_table_is_exact_and_extends_monotonically():
    field = DEFAULT_FIELD
    plan = EvalPlan(field, [3, 5, 11])
    table = plan.power_table(4)
    assert table == [
        [pow(x, j, field.modulus) for j in range(4)] for x in (3, 5, 11)
    ]
    wider = plan.power_table(7)
    assert wider is table  # grown in place, not rebuilt
    assert all(len(row) >= 7 for row in wider)
    assert wider[1][6] == pow(5, 6, field.modulus)


# -- rejection and key semantics -----------------------------------------------------


def test_duplicate_x_rejected_like_the_naive_path():
    field = DEFAULT_FIELD
    points = [(1, 5), (2, 6), (1, 7)]
    with pytest.raises(FieldError):
        lagrange_interpolate_at(field, points, 0)
    with pytest.raises(FieldError):
        InterpPlan(field, [1, 2, 1])
    with pytest.raises(FieldError):
        kernels.interpolate_at(field, points, 0)
    # Duplicates *mod p* are duplicates too.
    with pytest.raises(FieldError):
        InterpPlan(PrimeField(257), [1, 258])


def test_interp_plan_requires_one_y_per_node():
    plan = InterpPlan(DEFAULT_FIELD, [1, 2, 3])
    with pytest.raises(FieldError):
        plan.interpolate_at(0, [4, 5])


def test_same_xs_in_different_fields_never_share_a_plan():
    clear_plan_caches()
    xs = (1, 2, 3, 4)
    small = PrimeField(257)
    p_small = get_interp_plan(small, xs)
    p_default = get_interp_plan(DEFAULT_FIELD, xs)
    assert p_small is not p_default
    assert p_small.modulus == 257
    assert p_default.modulus == DEFAULT_FIELD.modulus
    # Identical (modulus, xs) key -> identical plan object.
    assert get_interp_plan(PrimeField(257), xs) is p_small
    assert get_eval_plan(small, xs) is not get_eval_plan(DEFAULT_FIELD, xs)
    # The shared grid must still reconstruct correctly in both fields.
    rng = random.Random(9)
    for field, plan in ((small, p_small), (DEFAULT_FIELD, p_default)):
        coefficients = [rng.randrange(field.modulus) for _ in range(4)]
        ys = evaluate_many(field, coefficients, xs)
        assert plan.constant(ys) == coefficients[0]


def test_plan_caches_stay_bounded(monkeypatch):
    clear_plan_caches()
    monkeypatch.setattr(kernels, "PLAN_CACHE_MAX", 8)
    for i in range(40):
        get_interp_plan(DEFAULT_FIELD, (i + 1, i + 2))
        get_eval_plan(DEFAULT_FIELD, (i + 1, i + 2))
    assert len(kernels._INTERP_PLANS) <= 8
    assert len(kernels._EVAL_PLANS) <= 8
    clear_plan_caches()
    assert not kernels._INTERP_PLANS and not kernels._EVAL_PLANS


def test_lambda_memo_stays_bounded(monkeypatch):
    monkeypatch.setattr(kernels, "LAMBDA_CACHE_MAX", 4)
    field = DEFAULT_FIELD
    plan = InterpPlan(field, [1, 2, 3])
    ys = [7, 8, 9]
    expected = {
        x: lagrange_interpolate_at(field, [(1, 7), (2, 8), (3, 9)], x)
        for x in range(20)
    }
    for x in range(20):
        assert plan.interpolate_at(x, ys) == expected[x]
    assert len(plan._lambdas) <= 4
    # Post-eviction answers remain exact.
    assert plan.interpolate_at(5, ys) == expected[5]
