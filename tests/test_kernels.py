"""Property tests: cached kernels == naive reference implementations.

The plan kernels in :mod:`repro.crypto.kernels` are the hot path of
every reconstruction in the library; these tests pin them bit-identical
to the reference functions in :mod:`repro.crypto.polynomial` over random
degrees, grids and fields, and pin the cache semantics (duplicate-x
rejection, cross-field key separation, bounded growth) plus the
simulator fast paths that ride along in this PR.
"""

import random

import pytest

from repro.crypto import kernels
from repro.crypto.field import (
    DEFAULT_FIELD,
    MERSENNE_31,
    MERSENNE_61,
    FieldError,
    PrimeField,
)
from repro.crypto.kernels import (
    BatchEvalPlan,
    EvalPlan,
    InterpPlan,
    clear_plan_caches,
    get_batch_eval_plan,
    get_eval_plan,
    get_interp_plan,
)
from repro.crypto.polynomial import (
    evaluate,
    evaluate_many,
    interpolate_constant,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at,
)

FIELDS = (PrimeField(257), PrimeField(MERSENNE_31), PrimeField(MERSENNE_61))


def _random_case(field, rng, max_k=12):
    k = rng.randrange(1, max_k)
    universe = min(field.modulus, 1 << 20)
    xs = rng.sample(range(universe), k)
    coefficients = [rng.randrange(field.modulus) for _ in range(k)]
    ys = evaluate_many(field, coefficients, xs)
    return xs, coefficients, ys


# -- plan == naive, property style ---------------------------------------------------


def test_eval_plan_matches_evaluate_many_over_random_cases():
    rng = random.Random(101)
    for field in FIELDS:
        for _ in range(60):
            xs, coefficients, ys = _random_case(field, rng)
            assert EvalPlan(field, xs).evaluate(coefficients) == ys
            assert kernels.evaluate_on(field, coefficients, xs) == ys


def test_interp_plan_matches_lagrange_over_random_cases():
    rng = random.Random(202)
    for field in FIELDS:
        for _ in range(60):
            xs, coefficients, ys = _random_case(field, rng)
            points = list(zip(xs, ys))
            plan = InterpPlan(field, xs)
            # Off-grid, on-grid, and zero evaluation points.
            probes = [rng.randrange(1 << 20), rng.choice(xs), 0]
            for x in probes:
                expected = lagrange_interpolate_at(field, points, x)
                assert plan.interpolate_at(x, ys) == expected
                assert kernels.interpolate_at(field, points, x) == expected
                assert expected == evaluate(field, coefficients, x)
            assert plan.constant(ys) == interpolate_constant(field, points)


def test_lambdas_at_zero_matches_reference():
    rng = random.Random(303)
    for field in FIELDS:
        for _ in range(30):
            xs, _coefficients, _ys = _random_case(field, rng)
            assert list(kernels.lambdas_at_zero(field, xs)) == (
                lagrange_coefficients_at_zero(field, xs)
            )


def test_power_table_is_exact_and_extends_monotonically():
    field = DEFAULT_FIELD
    plan = EvalPlan(field, [3, 5, 11])
    table = plan.power_table(4)
    assert table == [
        [pow(x, j, field.modulus) for j in range(4)] for x in (3, 5, 11)
    ]
    wider = plan.power_table(7)
    assert wider is table  # grown in place, not rebuilt
    assert all(len(row) >= 7 for row in wider)
    assert wider[1][6] == pow(5, 6, field.modulus)


# -- rejection and key semantics -----------------------------------------------------


def test_duplicate_x_rejected_like_the_naive_path():
    field = DEFAULT_FIELD
    points = [(1, 5), (2, 6), (1, 7)]
    with pytest.raises(FieldError):
        lagrange_interpolate_at(field, points, 0)
    with pytest.raises(FieldError):
        InterpPlan(field, [1, 2, 1])
    with pytest.raises(FieldError):
        kernels.interpolate_at(field, points, 0)
    # Duplicates *mod p* are duplicates too.
    with pytest.raises(FieldError):
        InterpPlan(PrimeField(257), [1, 258])


def test_interp_plan_requires_one_y_per_node():
    plan = InterpPlan(DEFAULT_FIELD, [1, 2, 3])
    with pytest.raises(FieldError):
        plan.interpolate_at(0, [4, 5])


def test_same_xs_in_different_fields_never_share_a_plan():
    clear_plan_caches()
    xs = (1, 2, 3, 4)
    small = PrimeField(257)
    p_small = get_interp_plan(small, xs)
    p_default = get_interp_plan(DEFAULT_FIELD, xs)
    assert p_small is not p_default
    assert p_small.modulus == 257
    assert p_default.modulus == DEFAULT_FIELD.modulus
    # Identical (modulus, xs) key -> identical plan object.
    assert get_interp_plan(PrimeField(257), xs) is p_small
    assert get_eval_plan(small, xs) is not get_eval_plan(DEFAULT_FIELD, xs)
    # The shared grid must still reconstruct correctly in both fields.
    rng = random.Random(9)
    for field, plan in ((small, p_small), (DEFAULT_FIELD, p_default)):
        coefficients = [rng.randrange(field.modulus) for _ in range(4)]
        ys = evaluate_many(field, coefficients, xs)
        assert plan.constant(ys) == coefficients[0]


def test_plan_caches_stay_bounded(monkeypatch):
    clear_plan_caches()
    monkeypatch.setattr(kernels, "PLAN_CACHE_MAX", 8)
    for i in range(40):
        get_interp_plan(DEFAULT_FIELD, (i + 1, i + 2))
        get_eval_plan(DEFAULT_FIELD, (i + 1, i + 2))
    assert len(kernels._INTERP_PLANS) <= 8
    assert len(kernels._EVAL_PLANS) <= 8
    clear_plan_caches()
    assert not kernels._INTERP_PLANS and not kernels._EVAL_PLANS


def test_lambda_memo_stays_bounded(monkeypatch):
    monkeypatch.setattr(kernels, "LAMBDA_CACHE_MAX", 4)
    field = DEFAULT_FIELD
    plan = InterpPlan(field, [1, 2, 3])
    ys = [7, 8, 9]
    expected = {
        x: lagrange_interpolate_at(field, [(1, 7), (2, 8), (3, 9)], x)
        for x in range(20)
    }
    for x in range(20):
        assert plan.interpolate_at(x, ys) == expected[x]
    assert len(plan._lambdas) <= 4
    # Post-eviction answers remain exact.
    assert plan.interpolate_at(5, ys) == expected[5]


# -- FIFO eviction (regression: overflow used to clear() wholesale) ------------------


def test_plan_cache_overflow_evicts_only_the_oldest(monkeypatch):
    """A cache at capacity drops exactly one entry per insert — the
    oldest — so warm plans survive overflow instead of being dumped
    wholesale with the rest of the cache."""
    clear_plan_caches()
    monkeypatch.setattr(kernels, "PLAN_CACHE_MAX", 4)
    keys = [(i + 1, i + 2, i + 3) for i in range(4)]
    plans = [get_interp_plan(DEFAULT_FIELD, k) for k in keys]
    get_interp_plan(DEFAULT_FIELD, (100, 101, 102))  # overflow by one
    assert len(kernels._INTERP_PLANS) <= 4
    # The warm tail is still cached (identity, not a rebuild)...
    assert get_interp_plan(DEFAULT_FIELD, keys[3]) is plans[3]
    assert get_interp_plan(DEFAULT_FIELD, keys[2]) is plans[2]
    # ...and only the oldest entry was rebuilt on re-request.
    assert get_interp_plan(DEFAULT_FIELD, keys[0]) is not plans[0]
    clear_plan_caches()


def test_batch_plan_cache_overflow_evicts_only_the_oldest(monkeypatch):
    clear_plan_caches()
    monkeypatch.setattr(kernels, "PLAN_CACHE_MAX", 3)
    keys = [(i + 1, i + 2) for i in range(3)]
    plans = [get_batch_eval_plan(DEFAULT_FIELD, k) for k in keys]
    get_batch_eval_plan(DEFAULT_FIELD, (50, 51))
    assert len(kernels._BATCH_EVAL_PLANS) <= 3
    assert get_batch_eval_plan(DEFAULT_FIELD, keys[2]) is plans[2]
    assert get_batch_eval_plan(DEFAULT_FIELD, keys[0]) is not plans[0]
    clear_plan_caches()


def test_lambda_memo_evicts_oldest_first(monkeypatch):
    monkeypatch.setattr(kernels, "LAMBDA_CACHE_MAX", 4)
    plan = InterpPlan(DEFAULT_FIELD, [1, 2, 3])
    for x in range(4):
        plan.lambdas_at(x)
    warm = plan.lambdas_at(3)
    plan.lambdas_at(10)  # overflow: only x=0, the oldest, leaves
    assert set(plan._lambdas) == {1, 2, 3, 10}
    assert plan.lambdas_at(3) is warm


# -- batch kernels == naive, property style ------------------------------------------


def _naive_interpolate_rows(field, xs, ys_rows, x):
    return [
        lagrange_interpolate_at(field, list(zip(xs, ys)), x)
        for ys in ys_rows
    ]


def test_batch_eval_matches_naive_over_random_cases():
    """Random fields, grids, degrees and batch widths — including
    ragged rows (padded with high-order zeros) and width-0 rows."""
    rng = random.Random(404)
    for field in FIELDS:
        for _ in range(25):
            k = rng.randrange(1, 8)
            xs = rng.sample(range(min(field.modulus, 1 << 16)), k)
            batch = rng.randrange(0, 6)
            rows = [
                [
                    rng.randrange(field.modulus)
                    for _ in range(rng.randrange(0, 7))
                ]
                for _ in range(batch)
            ]
            expected = [evaluate_many(field, row, xs) for row in rows]
            assert BatchEvalPlan(field, xs).evaluate_many(rows) == expected
            assert kernels.evaluate_rows(field, rows, xs) == expected


def test_batch_interp_matches_naive_over_random_cases():
    rng = random.Random(505)
    for field in FIELDS:
        for _ in range(25):
            k = rng.randrange(1, 8)
            xs = rng.sample(range(min(field.modulus, 1 << 16)), k)
            batch = rng.randrange(0, 6)
            ys_rows = [
                [rng.randrange(field.modulus) for _ in range(k)]
                for _ in range(batch)
            ]
            plan = InterpPlan(field, xs)
            probe = rng.randrange(1 << 16)
            assert plan.interpolate_many_at(probe, ys_rows) == (
                _naive_interpolate_rows(field, xs, ys_rows, probe)
            )
            assert plan.constant_many(ys_rows) == (
                _naive_interpolate_rows(field, xs, ys_rows, 0)
            )
            assert kernels.interpolate_constant_many(
                field, xs, ys_rows
            ) == _naive_interpolate_rows(field, xs, ys_rows, 0)
            grid = [rng.randrange(1 << 16) for _ in range(3)]
            assert plan.interpolate_grid(grid, ys_rows) == [
                [
                    lagrange_interpolate_at(field, list(zip(xs, ys)), x)
                    for x in grid
                ]
                for ys in ys_rows
            ]


def test_windowed_reconstruction_matches_per_window_naive():
    rng = random.Random(606)
    for field in FIELDS:
        k = 7
        xs = rng.sample(range(1, 1 << 16), k)
        ys_rows = [
            [rng.randrange(field.modulus) for _ in range(k)]
            for _ in range(5)
        ]
        windows = [(0, 1, 2), (2, 4, 6), (1, 3, 5), (0, 5, 6)]
        expected = [
            [
                interpolate_constant(
                    field, [(xs[i], ys[i]) for i in combo]
                )
                for combo in windows
            ]
            for ys in ys_rows
        ]
        assert kernels.interpolate_windows_at_zero(
            field, xs, ys_rows, windows
        ) == expected
        # Edges: no rows, and rows with no windows.
        assert kernels.interpolate_windows_at_zero(
            field, xs, [], windows
        ) == []
        assert kernels.interpolate_windows_at_zero(
            field, xs, ys_rows, []
        ) == [[] for _ in ys_rows]


def test_batch_kernels_degrade_gracefully_without_numpy(monkeypatch):
    """With numpy unavailable the stacked-column fallback must produce
    bit-identical output through every batch entry point (on a numpy-
    free interpreter both sides run the fallback, which still pins the
    fallback against the naive reference above)."""
    rng = random.Random(707)
    field = DEFAULT_FIELD
    xs = rng.sample(range(1, 1 << 12), 6)
    coeff_rows = [
        [rng.randrange(field.modulus) for _ in range(rng.randrange(1, 6))]
        for _ in range(7)
    ]
    ys_rows = [
        [rng.randrange(field.modulus) for _ in range(6)] for _ in range(7)
    ]
    windows = [(0, 1, 2), (3, 4, 5), (0, 2, 4)]
    grid = [17, 23, 99]

    before = (
        kernels.evaluate_rows(field, coeff_rows, xs),
        kernels.interpolate_constant_many(field, xs, ys_rows),
        kernels.interpolate_windows_at_zero(field, xs, ys_rows, windows),
        kernels.get_interp_plan(field, xs).interpolate_grid(
            grid, ys_rows
        ),
    )

    monkeypatch.setattr(kernels, "_np", None)
    clear_plan_caches()
    assert kernels.batch_engine(field) == "columns"
    after = (
        kernels.evaluate_rows(field, coeff_rows, xs),
        kernels.interpolate_constant_many(field, xs, ys_rows),
        kernels.interpolate_windows_at_zero(field, xs, ys_rows, windows),
        kernels.get_interp_plan(field, xs).interpolate_grid(
            grid, ys_rows
        ),
    )
    assert before == after
    clear_plan_caches()


def test_batch_engine_selection_per_field():
    """The numpy engine only serves moduli whose Horner step fits
    int64; the 61-bit Mersenne field always takes the column path."""
    if kernels._np is not None:
        assert kernels.batch_engine(PrimeField(257)) == "numpy"
        assert kernels.batch_engine(PrimeField(MERSENNE_31)) == "numpy"
    else:
        assert kernels.batch_engine(PrimeField(257)) == "columns"
    assert kernels.batch_engine(PrimeField(MERSENNE_61)) == "columns"


def test_batch_plans_are_isolated_per_field():
    clear_plan_caches()
    xs = (1, 2, 3)
    small = get_batch_eval_plan(PrimeField(257), xs)
    default = get_batch_eval_plan(DEFAULT_FIELD, xs)
    assert small is not default
    assert small.modulus == 257
    assert get_batch_eval_plan(PrimeField(257), xs) is small
    # Same coefficients, different reductions — per-field answers.
    rows = [[300, 400], [5, 600]]
    assert small.evaluate_many(rows) == [
        [evaluate(PrimeField(257), row, x) for x in xs] for row in rows
    ]
    assert default.evaluate_many(rows) == [
        [evaluate(DEFAULT_FIELD, row, x) for x in xs] for row in rows
    ]
    clear_plan_caches()


def test_batch_eval_rejects_nothing_but_handles_empty():
    plan = BatchEvalPlan(DEFAULT_FIELD, [1, 2, 3])
    assert plan.evaluate_many([]) == []
    assert plan.evaluate_many([[]]) == [[0, 0, 0]]
    assert plan.evaluate_many([[7]]) == [[7, 7, 7]]  # width-1 batch


def test_batch_interp_row_width_checked():
    plan = InterpPlan(DEFAULT_FIELD, [1, 2, 3])
    with pytest.raises(FieldError):
        plan.interpolate_many_at(0, [[1, 2]])
    with pytest.raises(FieldError):
        plan.interpolate_grid([5], [[1, 2, 3], [4, 5]])
    with pytest.raises(FieldError):
        kernels.interpolate_windows_at_zero(
            DEFAULT_FIELD, [1, 2, 3], [[1, 2]], [(0, 1)]
        )
