"""Cross-module integration tests: components wired the way Algorithm 4
wires them."""

import random

import pytest

from repro.core.coins import coin_source_from_words
from repro.core.global_coin import GlobalCoinSubsequence, synthetic_subsequence
from repro.core.parameters import ProtocolParameters
from repro.core.unreliable_coin_ba import run_unreliable_coin_ba
from repro.core.ae_to_everywhere import run_ae_to_everywhere
from repro.core.almost_everywhere import run_almost_everywhere_ba


class TestCoinPlumbing:
    def test_tournament_outputs_feed_algorithm5(self):
        """The §3.5 output words drive Algorithm 5 as its coin oracle."""
        n = 27
        result = run_almost_everywhere_ba(
            n, [1] * n, seed=201, output_words=1
        )
        source = coin_source_from_words(
            n,
            result.output_views,
            num_rounds=len(result.output_truth),
        )
        # Fault-free: every revealed word is unanimous -> good coin round.
        assert source.num_good_rounds() == source.num_rounds
        ba = run_unreliable_coin_ba(
            n, [p % 2 for p in range(n)], source, seed=202
        )
        assert ba.agreement_fraction() >= 0.9

    def test_synthetic_subsequence_feeds_algorithm3(self):
        """A (s, t) coin subsequence keys Algorithm 3's loops."""
        n = 64
        params = ProtocolParameters.simulation(n)
        seq = synthetic_subsequence(
            n, length=6, good_indices=[0, 2, 3, 5],
            rng=random.Random(203),
        )
        ks = seq.k_sequence(params.sqrt_n())
        knowledgeable = set(range(int(0.67 * n)))
        result = run_ae_to_everywhere(
            params, knowledgeable, 4, k_sequence=ks, seed=204
        )
        assert result.everyone_agrees(4)

    def test_coin_goodness_matches_agreement(self):
        """agreed_word/agreement_fraction are consistent with good flags."""
        n = 27
        result = run_almost_everywhere_ba(
            n, [0] * n, seed=205, output_words=2
        )
        seq = GlobalCoinSubsequence(
            views=result.output_views,
            truth=result.output_truth,
            corrupted=result.corrupted,
        )
        for index in seq.good_indices():
            assert seq.agreed_word(index) == seq.truth[index]
            assert seq.agreement_fraction(index) > 0.8


class TestParameterPlumbing:
    def test_tournament_respects_threshold_fraction(self):
        """The parameters' share threshold reaches the communicator."""
        from repro.adversary.adaptive import TournamentAdversary
        from repro.core.almost_everywhere import Tournament

        n = 27
        params = ProtocolParameters.simulation(n).with_overrides(
            share_threshold_fraction=0.5
        )
        tournament = Tournament(
            params, [1] * n, TournamentAdversary(n, 0), seed=206
        )
        assert tournament.comm.threshold_fraction == 0.5

    def test_everywhere_uses_coin_words_for_k(self):
        from repro.core.byzantine_agreement import run_everywhere_ba

        n = 27
        result = run_everywhere_ba(n, [1] * n, seed=207, coin_words=1)
        sqrt_n = ProtocolParameters.simulation(n).sqrt_n()
        ks = result.coin.k_sequence(sqrt_n)
        assert all(1 <= k <= sqrt_n for k in ks)
        # The AE2E phase ran at most one loop per coin word.
        assert result.ae2e_result.loops_run <= len(ks)
