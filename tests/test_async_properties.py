"""Property-based tests for the asynchronous engine and its protocols.

Invariants checked across randomized schedules and parameters:

* delivery completeness: every sent message is delivered exactly once
  (to a good recipient) or absorbed by the adversary, never duplicated
  or dropped while the run continues;
* fairness: no pending message is overtaken by more than the fairness
  bound;
* Bracha safety: at most one accepted value under every schedule;
* common-coin BA safety and validity under every schedule and oracle.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchrony import (
    AdversarialCoinOracle,
    AsyncNetwork,
    AsyncProcess,
    NullAsyncAdversary,
    RandomScheduler,
    SeededCoinOracle,
    TargetedDelayScheduler,
    run_bracha_broadcast,
    run_common_coin_ba,
)
from repro.asynchrony.scheduler import AsyncAdversary
from repro.net.messages import Message


class CountingProcess(AsyncProcess):
    """Forwards a fixed number of tokens; counts every delivery."""

    def __init__(self, pid, n, fanout, rng_seed):
        super().__init__(pid)
        self.n = n
        self.fanout = fanout
        self.rng = random.Random(rng_seed)
        self.received = 0

    def on_start(self):
        if self.pid != 0:
            return []
        return [
            Message(0, self.rng.randrange(1, self.n), "token", hops)
            for hops in range(self.fanout)
        ]

    def on_message(self, message):
        self.received += 1
        hops = message.payload
        if hops <= 0:
            return []
        target = self.rng.randrange(self.n)
        if target == self.pid:
            target = (target + 1) % self.n
        return [Message(self.pid, target, "token", hops - 1)]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    fanout=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_every_sent_message_is_delivered_exactly_once(n, fanout, seed):
    processes = [
        CountingProcess(pid, n, fanout, (seed << 4) | pid)
        for pid in range(n)
    ]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=RandomScheduler(seed),
    )
    result = network.run(max_steps=100_000)
    # Each initial token travels its hop count: total deliveries equal
    # sum over tokens of (hops + 1) where token h has h forwards.
    expected = sum(hops + 1 for hops in range(fanout))
    delivered = sum(p.received for p in processes)
    assert delivered == expected
    assert result.undelivered == 0
    assert result.quiescent


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    bound=st.integers(min_value=1, max_value=20),
)
def test_fairness_bound_is_respected(seed, bound):
    """Once the queue head's age exceeds the bound, the very next
    delivery must be the head — the override that makes eventual
    delivery mechanical.  (Ages of a batch sent together can still sum
    past the bound while the batch drains one per step; what is
    guaranteed is that the scheduler can never keep *skipping* an
    over-age head.)
    """
    n = 4
    violations = []

    class Tracker(AsyncNetwork):
        def _deliver_one(self, step):
            oldest = None
            over_age = False
            if self._pending:
                oldest = min(self._pending, key=lambda p: p.seq)
                over_age = (
                    self._deliveries - oldest.sent_step
                ) > self.fairness_bound
            before = {id(p) for p in self._pending}
            super()._deliver_one(step)
            after = {id(p) for p in self._pending}
            if over_age and oldest is not None:
                delivered = before - after
                if id(oldest) not in delivered:
                    violations.append(step)

    processes = [
        CountingProcess(pid, n, 5, (seed << 4) | pid) for pid in range(n)
    ]
    network = Tracker(
        processes,
        NullAsyncAdversary(n),
        scheduler=RandomScheduler(seed),
        fairness_bound=bound,
    )
    result = network.run(max_steps=10_000)
    assert violations == []
    assert result.undelivered == 0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    dealer=st.integers(min_value=0, max_value=9),
    value=st.integers(min_value=0, max_value=1000),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_bracha_always_consistent_and_valid(n, dealer, value, seed):
    dealer = dealer % n
    result = run_bracha_broadcast(
        n=n, dealer=dealer, value=value,
        scheduler=RandomScheduler(seed),
    )
    accepted = {v for v in result.good_outputs().values() if v is not None}
    assert accepted == {value}


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    pattern=st.integers(min_value=0, max_value=63),
    rig=st.sampled_from(["honest", "zeros", "ones"]),
)
def test_common_coin_ba_safety_under_any_oracle(seed, pattern, rig):
    n = 6
    inputs = [(pattern >> i) & 1 for i in range(n)]
    if rig == "honest":
        oracle = SeededCoinOracle(seed)
    else:
        oracle = AdversarialCoinOracle(fixed_bit=1 if rig == "ones" else 0)
    result = run_common_coin_ba(
        n, inputs, oracle=oracle,
        scheduler=RandomScheduler(seed), max_phases=16,
    )
    decided = {v for v in result.good_outputs().values() if v is not None}
    # Safety: never two values.
    assert len(decided) <= 1
    # Validity: a decided value was someone's input.
    if decided:
        assert decided.pop() in set(inputs)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    victims=st.sets(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=2
    ),
)
def test_starvation_cannot_break_bracha(seed, victims):
    result = run_bracha_broadcast(
        n=7, dealer=0, value=5,
        scheduler=TargetedDelayScheduler(victims=victims, seed=seed),
    )
    accepted = {v for v in result.good_outputs().values() if v is not None}
    assert accepted == {5}


class ByzantineFlipper(AsyncAdversary):
    """Corrupts one process; reports the opposite bit in every phase."""

    def __init__(self, n):
        super().__init__(n, budget=1)
        self._sent = set()

    def select_corruptions(self, step):
        return {self.n - 1}

    def on_deliver(self, step, delivered):
        if delivered is None or delivered.tag not in ("report", "proposal"):
            return []
        payload = delivered.payload
        if not isinstance(payload, (tuple, list)) or len(payload) != 2:
            return []
        phase, value = payload
        key = (phase, delivered.tag)
        if key in self._sent or not isinstance(value, int):
            return []
        self._sent.add(key)
        bad = self.n - 1
        flipped = 1 - value if value in (0, 1) else 0
        return [
            Message(bad, pid, delivered.tag, (phase, flipped))
            for pid in range(self.n)
            if pid != bad
        ]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    victims=st.sets(
        st.integers(min_value=0, max_value=4), min_size=0, max_size=2
    ),
)
def test_byzantine_plus_starvation_never_split_common_coin_ba(seed, victims):
    """Combined stress: one Byzantine flipper and scheduler starvation of
    up to two victims; safety and validity must survive both at once."""
    n = 6
    inputs = [1] * n
    scheduler = (
        TargetedDelayScheduler(victims=victims, seed=seed)
        if victims
        else RandomScheduler(seed)
    )
    result = run_common_coin_ba(
        n, inputs, oracle=SeededCoinOracle(seed),
        adversary=ByzantineFlipper(n), scheduler=scheduler,
        max_steps=200_000,
    )
    decided = {
        v for v in result.good_outputs().values() if v is not None
    }
    assert decided <= {1}
