"""End-to-end tests for Theorem 1's Everywhere Byzantine Agreement."""

import pytest

from repro.adversary.adaptive import BinStuffingAdversary, TournamentAdversary
from repro.core.byzantine_agreement import run_everywhere_ba
from repro.core.parameters import ProtocolParameters

N = 27


@pytest.fixture(scope="module")
def fault_free():
    return run_everywhere_ba(N, inputs=[1] * N, seed=101)


class TestFaultFree:
    def test_success(self, fault_free):
        assert fault_free.success()

    def test_validity(self, fault_free):
        assert fault_free.bit == 1
        assert fault_free.is_valid()

    def test_coin_subsequence_mostly_good(self, fault_free):
        # Fault-free, every revealed coin word is genuinely random.
        assert fault_free.coin.good_fraction() == 1.0

    def test_everyone_decided(self, fault_free):
        for pid, value in fault_free.ae2e_result.decided.items():
            assert value == fault_free.bit

    def test_bits_accounted_for_both_phases(self, fault_free):
        # Tournament and push-phase traffic both appear per processor.
        assert fault_free.max_bits_per_processor() > 0
        ae_bits = fault_free.ae_result.ledger.sent_bits
        ae2e_bits = fault_free.ae2e_result.sent_bits
        for p in range(N):
            combined = fault_free.bits_per_processor[p]
            assert combined == ae_bits.get(p, 0) + ae2e_bits.get(p, 0)

    def test_rounds_tracked(self, fault_free):
        assert fault_free.total_rounds() > 0


class TestZeroInput:
    def test_agrees_on_zero(self):
        result = run_everywhere_ba(N, inputs=[0] * N, seed=102)
        assert result.bit == 0
        assert result.success()


class TestWithAdversary:
    def test_moderate_adversary_success(self):
        adv = BinStuffingAdversary(N, budget=3, seed=103)
        result = run_everywhere_ba(
            N, inputs=[1] * N, tournament_adversary=adv, seed=104
        )
        # Validity always; agreement among good processors.
        assert result.bit == 1
        good_decided = [
            v
            for p, v in result.ae2e_result.decided.items()
            if p not in result.corrupted
        ]
        agreeing = sum(1 for v in good_decided if v == 1)
        assert agreeing >= 0.9 * len(good_decided)

    def test_no_good_processor_decides_wrong(self):
        """Lemma 7(2) end to end: decide M or stay undecided — never the
        forged message."""
        adv = BinStuffingAdversary(N, budget=4, seed=105)
        result = run_everywhere_ba(
            N, inputs=[1] * N, tournament_adversary=adv, seed=106
        )
        forged = 1 - result.bit
        for p, v in result.ae2e_result.decided.items():
            if p not in result.corrupted:
                assert v != forged


class TestDeterminism:
    def test_reproducible(self):
        a = run_everywhere_ba(N, inputs=[1] * N, seed=107)
        b = run_everywhere_ba(N, inputs=[1] * N, seed=107)
        assert a.bit == b.bit
        assert a.bits_per_processor == b.bits_per_processor
