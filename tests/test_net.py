"""Unit tests for the network simulator, messages, and accounting."""

import random
from typing import List

import pytest

from repro.net.accounting import BitLedger
from repro.net.messages import HEADER_BITS, Message, MessageError, payload_bits
from repro.net.rng import child_rng, derive_seed
from repro.net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    SimulationError,
    SyncNetwork,
)
from repro.adversary.behaviors import FixedBitBehavior, SilentBehavior
from repro.adversary.flooding import FloodingAdversary
from repro.adversary.static import StaticByzantineAdversary


class TestPayloadBits:
    def test_none(self):
        assert payload_bits(None) == 1

    def test_bool(self):
        assert payload_bits(True) == 1
        assert payload_bits(False) == 1

    def test_int(self):
        assert payload_bits(0) == 1
        assert payload_bits(1) == 1
        assert payload_bits(255) == 8
        assert payload_bits(256) == 9
        assert payload_bits(-1) == 2

    def test_str(self):
        assert payload_bits("ab") == 16

    def test_tuple(self):
        assert payload_bits((255, 255)) == 16

    def test_dict(self):
        assert payload_bits({"a": 255}) == 8 + 8

    def test_unmeasurable_raises(self):
        with pytest.raises(MessageError):
            payload_bits(object())

    def test_message_bits(self):
        m = Message(0, 1, "v", 255)
        assert m.bits() == HEADER_BITS + 8 + 8


class TestRngDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_child_rng_streams_independent(self):
        a = child_rng(9, "x").random()
        b = child_rng(9, "y").random()
        assert a != b


class TestBitLedger:
    def test_record_and_totals(self):
        ledger = BitLedger(3)
        m = Message(0, 1, "v", 255)
        ledger.record(m)
        assert ledger.bits_sent_by(0) == m.bits()
        assert ledger.total_bits() == m.bits()
        assert ledger.total_messages() == 1

    def test_max_and_mean(self):
        ledger = BitLedger(2)
        ledger.record(Message(0, 1, "v", 255))
        ledger.record(Message(0, 1, "v", 255))
        ledger.record(Message(1, 0, "v", 255))
        assert ledger.max_bits_per_processor() == 2 * Message(0, 1, "v", 255).bits()
        assert ledger.mean_bits_per_processor() == pytest.approx(
            1.5 * Message(0, 1, "v", 255).bits()
        )

    def test_phase_breakdown(self):
        ledger = BitLedger(2)
        ledger.set_phase("alpha")
        ledger.record(Message(0, 1, "v", 1))
        ledger.set_phase("beta")
        ledger.record(Message(1, 0, "v", 1))
        breakdown = ledger.phase_breakdown()
        assert set(breakdown) == {"alpha", "beta"}

    def test_record_abstract(self):
        ledger = BitLedger(2)
        ledger.record_abstract(0, 1, 100)
        assert ledger.bits_sent_by(0) == 100
        assert ledger.received_bits[1] == 100

    def test_snapshot(self):
        ledger = BitLedger(2)
        ledger.record(Message(0, 1, "v", 1))
        ledger.tick_round()
        snap = ledger.snapshot()
        assert snap.rounds == 1
        assert snap.total_messages == 1
        assert "total_bits_sent" in snap.as_row()

    def test_include_filter(self):
        ledger = BitLedger(3)
        ledger.record(Message(0, 1, "v", 1))
        ledger.record(Message(2, 1, "v", (1, 1, 1)))
        assert ledger.max_bits_per_processor(include=[0, 1]) == Message(
            0, 1, "v", 1
        ).bits()


class EchoProtocol(ProcessorProtocol):
    """Sends its pid to everyone in round 1; decides on sum of inputs."""

    def __init__(self, pid: int, n: int):
        super().__init__(pid)
        self.n = n
        self._output = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            return [
                Message(self.pid, other, "hello", self.pid)
                for other in range(self.n)
                if other != self.pid
            ]
        if round_no == 2:
            self._output = sum(m.payload for m in inbox if m.tag == "hello")
        return []

    def output(self):
        return self._output


class TestSyncNetwork:
    def test_fault_free_run(self):
        n = 5
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, NullAdversary(n))
        result = net.run(max_rounds=3)
        assert result.halted
        total = sum(range(n))
        for pid, value in result.outputs.items():
            assert value == total - pid

    def test_ledger_counts_good_traffic(self):
        n = 3
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, NullAdversary(n))
        net.run(max_rounds=3)
        assert net.ledger.total_messages() == n * (n - 1)

    def test_pid_mismatch_rejected(self):
        protocols = [EchoProtocol(1, 2), EchoProtocol(0, 2)]
        with pytest.raises(SimulationError):
            SyncNetwork(protocols, NullAdversary(2))

    def test_static_adversary_excluded_from_good_outputs(self):
        n = 4
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        adversary = StaticByzantineAdversary(
            n, targets={0}, behavior=SilentBehavior()
        )
        net = SyncNetwork(protocols, adversary)
        result = net.run(max_rounds=3)
        assert 0 in result.corrupted
        assert 0 not in result.good_outputs()

    def test_adversary_messages_not_in_good_ledger(self):
        n = 4
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        adversary = StaticByzantineAdversary(
            n, targets={0}, behavior=FixedBitBehavior(1), vote_tag="hello"
        )
        net = SyncNetwork(protocols, adversary)
        net.run(max_rounds=3)
        assert net.ledger.bits_sent_by(0) == 0
        assert net.flood_bits > 0

    def test_flooding_adversary_floods(self):
        n = 4
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        inner = StaticByzantineAdversary(
            n, targets={0}, behavior=SilentBehavior()
        )
        adversary = FloodingAdversary(inner, flood_factor=10)
        net = SyncNetwork(protocols, adversary)
        net.run(max_rounds=3)
        assert net.flood_bits >= 10 * 64

    def test_agreement_value(self):
        n = 3
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, NullAdversary(n))
        result = net.run(max_rounds=3)
        # Outputs differ per pid here, so no agreement value.
        assert result.agreement_value() is None

    def test_budget_enforced(self):
        n = 4
        adversary = StaticByzantineAdversary(
            n, targets={0}, behavior=SilentBehavior()
        )
        adversary.budget = 0
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, adversary)
        result = net.run(max_rounds=2)
        assert result.corrupted == set()


class _IdleAdversary(Adversary):
    """Does nothing, but is *not* a NullAdversary: takes the slow path."""

    def __init__(self, n: int) -> None:
        super().__init__(n, budget=0)

    def act(self, view: AdversaryView) -> List[Message]:
        return []


class TestSimulatorFastPaths:
    """The NullAdversary fast path and reused inbox buffers are pure
    optimisations: executions must be indistinguishable from the fully
    tracked path, message for message and bit for bit."""

    def _run(self, adversary_factory, n=5, rounds=4):
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, adversary_factory(n))
        result = net.run(max_rounds=rounds)
        return result, net

    def test_null_adversary_bit_identical_to_tracked_idle(self):
        fast, fast_net = self._run(NullAdversary)
        slow, slow_net = self._run(_IdleAdversary)
        assert fast.outputs == slow.outputs
        assert fast.rounds == slow.rounds
        assert fast.halted == slow.halted
        assert fast.corrupted == slow.corrupted == set()
        assert (
            fast_net.ledger.total_bits() == slow_net.ledger.total_bits()
        )
        assert (
            fast_net.ledger.total_messages()
            == slow_net.ledger.total_messages()
        )

    def test_inbox_buffers_are_reused_not_reallocated(self):
        n = 3
        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        net = SyncNetwork(protocols, NullAdversary(n))
        buffers = {id(box) for box in net._inboxes}
        buffers |= {id(box) for box in net._spare_inboxes}
        for rnd in range(1, 6):
            net.step(rnd)
            assert {id(box) for box in net._inboxes} <= buffers
            assert {id(box) for box in net._spare_inboxes} <= buffers

    def test_adversary_message_to_unknown_recipient_rejected(self):
        n = 3

        class Bad(StaticByzantineAdversary):
            def act(self, view):
                return [Message(next(iter(self.corrupted)), 99, "x", 1)]

        protocols = [EchoProtocol(pid, n) for pid in range(n)]
        adversary = Bad(n, targets={0}, behavior=SilentBehavior())
        net = SyncNetwork(protocols, adversary)
        with pytest.raises(SimulationError):
            net.run(max_rounds=2)


class TestMessageSlots:
    def test_message_has_no_instance_dict(self):
        message = Message(0, 1, "tag", 7)
        assert not hasattr(message, "__dict__")
        assert "payload" in Message.__slots__
        with pytest.raises(Exception):
            # Frozen + slotted: field assignment raises
            # FrozenInstanceError; unknown attributes are equally
            # rejected (TypeError on 3.11, AttributeError on 3.12+).
            message.payload = 9

    def test_slotted_message_still_frozen_hashable_measurable(self):
        a = Message(0, 1, "tag", 7)
        b = Message(0, 1, "tag", 7)
        assert a == b and hash(a) == hash(b)
        assert a.bits() == HEADER_BITS + payload_bits("tag") + payload_bits(7)
