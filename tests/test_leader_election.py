"""Tests for scalable leader election (the [17] companion result, §2)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.adaptive import GreedyElectionAdversary, TournamentAdversary
from repro.core.global_coin import GlobalCoinSubsequence, synthetic_subsequence
from repro.core.leader_election import (
    AttackOutcome,
    LeaderDraw,
    LeaderElectionError,
    LeaderSchedule,
    elect_leader,
    expected_good_rounds,
    leader_schedule,
    run_leader_election,
    schedule_length_for,
    schedule_under_attack,
)
from repro.core.parameters import ProtocolParameters


def make_coin(n, length, seed=0, confused_fraction=0.0, corrupted=None):
    rng = random.Random(seed)
    seq = synthetic_subsequence(
        n, length=length, good_indices=range(length), rng=rng,
        confused_fraction=confused_fraction,
    )
    if corrupted is not None:
        seq.corrupted = set(corrupted)
    return seq


class TestElectLeader:
    def test_leader_is_word_mod_n(self):
        coin = make_coin(10, 5, seed=3)
        draw = elect_leader(coin, 10, word_index=2)
        assert draw.leader == coin.truth[2] % 10
        assert draw.word_index == 2

    def test_full_agreement_without_confusion(self):
        coin = make_coin(30, 4)
        draw = elect_leader(coin, 30)
        assert draw.agreement_fraction == pytest.approx(1.0)

    def test_agreement_drops_with_confusion(self):
        coin = make_coin(100, 3, seed=7, confused_fraction=0.2)
        draw = elect_leader(coin, 100)
        assert 0.5 < draw.agreement_fraction < 1.0

    def test_good_flag_tracks_corruption(self):
        coin = make_coin(10, 5, seed=3)
        leader = coin.truth[0] % 10
        coin.corrupted = {leader}
        draw = elect_leader(coin, 10)
        assert draw.leader == leader
        assert not draw.leader_is_good

    def test_index_out_of_range_raises(self):
        coin = make_coin(10, 2)
        with pytest.raises(LeaderElectionError):
            elect_leader(coin, 10, word_index=2)
        with pytest.raises(LeaderElectionError):
            elect_leader(coin, 10, word_index=-1)

    def test_unlearned_word_raises(self):
        coin = GlobalCoinSubsequence(
            views={p: [None] for p in range(6)},
            truth=[42],
            corrupted=set(),
        )
        with pytest.raises(LeaderElectionError):
            elect_leader(coin, 6)

    def test_explicit_corrupted_overrides_coin(self):
        coin = make_coin(10, 1, seed=1)
        leader = coin.truth[0] % 10
        draw = elect_leader(coin, 10, corrupted={leader})
        assert not draw.leader_is_good


class TestLeaderSchedule:
    def test_draws_consecutive_words(self):
        coin = make_coin(20, 8, seed=5)
        schedule = leader_schedule(coin, 20, count=5)
        assert [d.word_index for d in schedule.draws] == list(range(5))
        assert schedule.leaders == [w % 20 for w in coin.truth[:5]]

    def test_skips_unlearned_words(self):
        coin = make_coin(20, 6, seed=5)
        # Nobody learns word 1.
        for p in coin.views:
            coin.views[p][1] = None
        schedule = leader_schedule(coin, 20, count=4)
        assert [d.word_index for d in schedule.draws] == [0, 2, 3, 4]

    def test_too_short_raises(self):
        coin = make_coin(20, 3, seed=5)
        with pytest.raises(LeaderElectionError):
            leader_schedule(coin, 20, count=4)

    def test_zero_count_raises(self):
        coin = make_coin(20, 3)
        with pytest.raises(LeaderElectionError):
            leader_schedule(coin, 20, count=0)

    def test_good_fraction(self):
        coin = make_coin(10, 10, seed=2)
        leaders = [w % 10 for w in coin.truth]
        coin.corrupted = {leaders[0], leaders[3]}
        schedule = leader_schedule(coin, 10, count=10)
        expected = sum(1 for m in leaders if m not in coin.corrupted) / 10
        assert schedule.good_fraction() == pytest.approx(expected)

    def test_min_agreement_bounds_each_draw(self):
        coin = make_coin(100, 6, seed=9, confused_fraction=0.1)
        schedule = leader_schedule(coin, 100, count=6)
        assert schedule.min_agreement() <= min(
            d.agreement_fraction for d in schedule.draws
        ) + 1e-12
        assert 0.0 < schedule.min_agreement() <= 1.0

    def test_empty_schedule_accessors(self):
        schedule = LeaderSchedule(draws=[])
        assert schedule.good_fraction() == 0.0
        assert schedule.min_agreement() == 0.0
        assert schedule.leaders == []

    def test_schedule_length_polylog(self):
        assert schedule_length_for(16) < schedule_length_for(1 << 20)
        assert schedule_length_for(1 << 20) <= 3 * 20

    def test_representative_against_quarter_corruption(self):
        n = 120
        coin = make_coin(n, 48, seed=13)
        rng = random.Random(13)
        coin.corrupted = set(rng.sample(range(n), n // 4))
        schedule = leader_schedule(coin, n, count=48)
        # Uniform draws: good fraction concentrates on 0.75.
        assert abs(schedule.good_fraction() - 0.75) < 0.2


class TestScheduleUnderAttack:
    def _schedule(self, leaders, corrupted=frozenset()):
        draws = [
            LeaderDraw(
                leader=m,
                word_index=i,
                agreement_fraction=1.0,
                leader_is_good=m not in corrupted,
            )
            for i, m in enumerate(leaders)
        ]
        return LeaderSchedule(draws=draws, corrupted_at_draw=set(corrupted))

    def test_instant_takeover_kills_every_round(self):
        schedule = self._schedule([1, 2, 3, 4])
        outcome = schedule_under_attack(schedule, budget=10, takeover_delay=0)
        assert outcome.round_good == [False] * 4
        assert outcome.useful_good_fraction() == 0.0

    def test_instant_takeover_limited_by_budget(self):
        schedule = self._schedule([1, 2, 3, 4])
        outcome = schedule_under_attack(schedule, budget=2, takeover_delay=0)
        assert outcome.round_good == [False, False, True, True]
        assert outcome.budget_left == 0

    def test_delayed_takeover_spares_sitting_leader(self):
        schedule = self._schedule([1, 2, 3, 4])
        outcome = schedule_under_attack(schedule, budget=10, takeover_delay=1)
        assert outcome.round_good == [True] * 4
        assert outcome.corrupted_leaders == [1, 2, 3, 4]

    def test_delayed_takeover_catches_repeat_leader(self):
        schedule = self._schedule([5, 5, 6])
        outcome = schedule_under_attack(schedule, budget=10, takeover_delay=1)
        # Leader 5 is corrupted after round 0, so its round-1 repeat is bad.
        assert outcome.round_good == [True, False, True]
        # Budget spent once on 5 (already corrupt at round 1) and once on 6.
        assert outcome.corrupted_leaders == [5, 6]

    def test_initially_corrupt_leader_costs_nothing(self):
        schedule = self._schedule([7, 8], corrupted={7})
        outcome = schedule_under_attack(schedule, budget=1, takeover_delay=0)
        assert outcome.round_good == [False, False]
        assert outcome.corrupted_leaders == [8]

    def test_zero_budget_is_harmless_with_delay(self):
        schedule = self._schedule([1, 2, 3])
        outcome = schedule_under_attack(schedule, budget=0, takeover_delay=1)
        assert outcome.round_good == [True] * 3
        assert outcome.budget_left == 0

    def test_long_delay_never_lands(self):
        schedule = self._schedule([1, 1, 1])
        outcome = schedule_under_attack(schedule, budget=5, takeover_delay=10)
        assert outcome.round_good == [True] * 3

    def test_negative_arguments_rejected(self):
        schedule = self._schedule([1])
        with pytest.raises(ValueError):
            schedule_under_attack(schedule, budget=-1)
        with pytest.raises(ValueError):
            schedule_under_attack(schedule, budget=1, takeover_delay=-2)

    def test_empty_schedule(self):
        outcome = schedule_under_attack(self._schedule([]), budget=3)
        assert outcome.round_good == []
        assert outcome.useful_good_fraction() == 0.0
        assert outcome.budget_left == 3


class TestExpectedGoodRounds:
    def test_delay_regime_matches_population(self):
        assert expected_good_rounds(10, 0.8, budget=100, takeover_delay=1) == (
            pytest.approx(8.0)
        )

    def test_instant_regime_subtracts_budget(self):
        assert expected_good_rounds(10, 0.8, budget=3, takeover_delay=0) == (
            pytest.approx(5.0)
        )

    def test_instant_regime_floors_at_zero(self):
        assert expected_good_rounds(4, 0.5, budget=100, takeover_delay=0) == 0.0

    def test_no_rounds(self):
        assert expected_good_rounds(0, 0.9, budget=1, takeover_delay=0) == 0.0

    def test_model_matches_simulator_instant(self):
        rng = random.Random(21)
        n = 50
        leaders = [rng.randrange(n) for _ in range(30)]
        draws = [
            LeaderDraw(m, i, 1.0, True) for i, m in enumerate(leaders)
        ]
        schedule = LeaderSchedule(draws=draws)
        outcome = schedule_under_attack(schedule, budget=30, takeover_delay=0)
        model = expected_good_rounds(30, 1.0, budget=30, takeover_delay=0)
        # Distinct leaders all die in office; repeats only help the model
        # (already-corrupt repeats cost no budget).
        assert sum(outcome.round_good) <= model + 1e-9


class TestEndToEnd:
    def test_fault_free_rotation(self):
        n = 27
        schedule = run_leader_election(n, schedule_length=4, seed=0)
        assert len(schedule.draws) == 4
        assert all(0 <= m < n for m in schedule.leaders)
        assert schedule.good_fraction() == pytest.approx(1.0)
        assert schedule.min_agreement() > 0.8

    def test_deterministic_given_seed(self):
        a = run_leader_election(27, schedule_length=3, seed=5)
        b = run_leader_election(27, schedule_length=3, seed=5)
        assert a.leaders == b.leaders

    def test_seed_changes_schedule(self):
        a = run_leader_election(27, schedule_length=4, seed=1)
        b = run_leader_election(27, schedule_length=4, seed=2)
        assert a.leaders != b.leaders  # 27^4 combinations; collision ~ never

    def test_greedy_post_hoc_adversary_gains_nothing_at_draw_time(self):
        # The greedy adversary corrupts election winners the moment they
        # are announced — the attack that breaks processor-election.  The
        # leaders are drawn from words committed before any winner was
        # known, so the drawn schedule still tracks the population.
        n = 27
        adversary = GreedyElectionAdversary(n, budget=3, seed=4)
        schedule = run_leader_election(
            n, schedule_length=4, adversary=adversary, seed=4
        )
        assert len(schedule.draws) == 4
        assert schedule.good_fraction() >= 0.5

    def test_respects_explicit_params(self):
        n = 27
        params = ProtocolParameters.simulation(n)
        schedule = run_leader_election(
            n, schedule_length=3, params=params, seed=0
        )
        assert len(schedule.draws) == 3


class TestProperties:
    @given(
        n=st.integers(min_value=2, max_value=500),
        length=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_leader_always_in_range(self, n, length, seed):
        coin = make_coin(n, length, seed=seed)
        schedule = leader_schedule(coin, n, count=length)
        assert all(0 <= m < n for m in schedule.leaders)

    @given(
        leaders=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=30
        ),
        budget=st.integers(min_value=0, max_value=40),
        delay=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_attack_conservation(self, leaders, budget, delay):
        draws = [
            LeaderDraw(m, i, 1.0, True) for i, m in enumerate(leaders)
        ]
        schedule = LeaderSchedule(draws=draws)
        outcome = schedule_under_attack(schedule, budget, delay)
        spent = budget - outcome.budget_left
        assert spent == len(outcome.corrupted_leaders)
        assert spent <= min(budget, len(leaders))
        assert len(outcome.round_good) == len(leaders)
        # Distinct leaders are only corrupted once each.
        assert len(set(outcome.corrupted_leaders)) == len(
            outcome.corrupted_leaders
        )

    @given(
        leaders=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=30
        ),
        budget=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_delay_dominates_instant(self, leaders, budget):
        """A delayed takeover never yields fewer good rounds than instant."""
        draws = [
            LeaderDraw(m, i, 1.0, True) for i, m in enumerate(leaders)
        ]
        instant = schedule_under_attack(
            LeaderSchedule(draws=list(draws)), budget, takeover_delay=0
        )
        delayed = schedule_under_attack(
            LeaderSchedule(draws=list(draws)), budget, takeover_delay=1
        )
        assert sum(delayed.round_good) >= sum(instant.round_good)

    @given(seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_schedule_concentrates(self, seed):
        """Good fraction of a 60-draw schedule stays within 0.25 of the
        population's good fraction (Chernoff would give much tighter)."""
        n = 90
        coin = make_coin(n, 60, seed=seed)
        rng = random.Random(seed + 1)
        coin.corrupted = set(rng.sample(range(n), n // 3))
        schedule = leader_schedule(coin, n, count=60)
        assert abs(schedule.good_fraction() - 2 / 3) < 0.25
