"""Tests for sendSecretUp / sendDown / sendOpen (Lemma 3) and robustness."""

import random

import pytest

from repro.core.communication import (
    SecretKey,
    ShareRecord,
    TreeCommunicator,
    robust_reconstruct,
)
from repro.crypto.field import PrimeField
from repro.crypto.shamir import ShamirScheme, Share
from repro.net.accounting import BitLedger
from repro.topology.links import LinkStructure
from repro.topology.tree import NodeId, TreeTopology

FIELD = PrimeField((1 << 61) - 1)


def build_comm(n=27, q=3, k1=5, uplink=10, ell=5, seed=0, threshold=1 / 3):
    rng = random.Random(seed)
    tree = TreeTopology(n=n, q=q, k1=k1, rng=rng)
    links = LinkStructure(
        tree, uplink_degree=uplink, ell_link_degree=ell, intra_degree=6,
        rng=rng,
    )
    ledger = BitLedger(n)
    comm = TreeCommunicator(
        tree, links, FIELD, ledger, rng=random.Random(seed + 1),
        threshold_fraction=threshold,
    )
    return tree, links, comm


class TestRobustReconstruct:
    def make_shares(self, secret, n_shares, threshold, seed=0):
        scheme = ShamirScheme(n_shares, threshold, field=FIELD)
        return scheme.deal(secret, random.Random(seed))

    def test_clean_pool(self):
        shares = self.make_shares(777, 9, 4)
        value = robust_reconstruct(FIELD, shares, 9, 4, random.Random(1))
        assert value == 777

    def test_minority_tampering_corrected(self):
        shares = self.make_shares(777, 9, 4)
        tampered = [
            Share(s.x, (s.value + 1) % FIELD.modulus) if i < 2 else s
            for i, s in enumerate(shares)
        ]
        value = robust_reconstruct(FIELD, tampered, 9, 4, random.Random(2))
        assert value == 777

    def test_too_much_tampering_fails_safe(self):
        shares = self.make_shares(777, 9, 4)
        tampered = [
            Share(s.x, (s.value + 1 + i) % FIELD.modulus) if i < 5 else s
            for i, s in enumerate(shares)
        ]
        value = robust_reconstruct(FIELD, tampered, 9, 4, random.Random(3))
        # Either fails (None) or — never — returns a wrong value silently.
        assert value in (None, 777) or value is None

    def test_insufficient_shares(self):
        shares = self.make_shares(5, 9, 4)[:3]
        assert robust_reconstruct(FIELD, shares, 9, 4, random.Random(4)) is None

    def test_duplicate_coordinates_majority(self):
        shares = self.make_shares(123, 7, 3)
        # Duplicate x=1 with one wrong copy and two right copies.
        augmented = shares + [shares[0], Share(shares[0].x, 0)]
        value = robust_reconstruct(FIELD, augmented, 7, 3, random.Random(5))
        assert value == 123


class TestInitialShare:
    def test_leaf_members_hold_one_record_each(self):
        tree, links, comm = build_comm()
        comm.initial_share(0, {(0, 0): 42})
        leaf = NodeId(1, 0)
        for member in tree.members(leaf):
            records = comm.records_at(leaf, member, (0, 0))
            assert len(records) == 1
            assert records[0].depth == 1

    def test_group_size_registered(self):
        tree, links, comm = build_comm()
        comm.initial_share(0, {(0, 0): 42})
        assert comm.group_sizes[((0, 0), ((0, 0),))] == len(
            tree.members(NodeId(1, 0))
        )

    def test_ledger_charged(self):
        tree, links, comm = build_comm()
        comm.initial_share(0, {(0, 0): 42})
        assert comm.ledger.bits_sent_by(0) > 0


class TestSendSecretUpAndReveal:
    def test_roundtrip_one_level(self):
        tree, links, comm = build_comm()
        key = (5, 0)
        comm.initial_share(5, {key: 4242})
        leaf = NodeId(1, 5)
        comm.send_secret_up(leaf, [key], corrupted=set())
        # Leaf store erased (Definition 1's deletion).
        for member in tree.members(leaf):
            assert comm.records_at(leaf, member, key) == []
        parent = tree.parent(leaf)
        outcome = comm.reveal(parent, [key], corrupted=set())
        # Every leaf node under the parent learns the secret.
        for leaf_node, values in outcome.leaf_values.items():
            assert values[key] == 4242
        # Node members learn it via sendOpen.
        views = [
            outcome.node_views[m][key] for m in tree.members(parent)
        ]
        assert views.count(4242) >= 0.9 * len(views)

    def test_roundtrip_two_levels(self):
        tree, links, comm = build_comm()
        key = (7, 0)
        comm.initial_share(7, {key: 999})
        leaf = NodeId(1, 7)
        comm.send_secret_up(leaf, [key], corrupted=set())
        level2 = tree.parent(leaf)
        comm.send_secret_up(level2, [key], corrupted=set())
        level3 = tree.parent(level2)
        outcome = comm.reveal(level3, [key], corrupted=set())
        correct_views = sum(
            1
            for m in tree.members(level3)
            if outcome.node_views[m][key] == 999
        )
        assert correct_views >= 0.85 * len(tree.members(level3))

    def test_reveal_with_minority_corruption_on_good_path(self):
        """Lemma 3(2): corruption that leaves the path good cannot stop
        the reveal."""
        tree, links, comm = build_comm(seed=3)
        key = (11, 0)
        comm.initial_share(11, {key: 31337})
        leaf = NodeId(1, 11)
        # Corrupt 3 processors that do NOT sit in the owner's leaf
        # committee (the path stays good).
        leaf_members = set(tree.members(leaf))
        pool = [p for p in range(27) if p not in leaf_members]
        corrupted = set(pool[:3])
        comm.send_secret_up(leaf, [key], corrupted=corrupted)
        parent = tree.parent(leaf)
        outcome = comm.reveal(parent, [key], corrupted=corrupted)
        good_members = [
            m for m in tree.members(parent) if m not in corrupted
        ]
        correct = sum(
            1 for m in good_members if outcome.node_views[m][key] == 31337
        )
        assert correct >= 0.75 * len(good_members)

    def test_reveal_through_bad_leaf_fails_safe(self):
        """When the owner's committee is overwhelmed the reveal may fail,
        but it must fail to None — never to a silently wrong value."""
        tree, links, comm = build_comm(seed=3)
        key = (11, 0)
        comm.initial_share(11, {key: 31337})
        leaf = NodeId(1, 11)
        # Corrupt a weighty chunk of the leaf committee itself.
        corrupted = set(list(tree.members(leaf))[:2])
        comm.send_secret_up(leaf, [key], corrupted=corrupted)
        parent = tree.parent(leaf)
        outcome = comm.reveal(parent, [key], corrupted=corrupted)
        for member in tree.members(parent):
            if member in corrupted:
                continue
            assert outcome.node_views[member][key] in (31337, None)

    def test_multiple_secrets_batched(self):
        tree, links, comm = build_comm()
        keys = [(3, w) for w in range(4)]
        comm.initial_share(3, {k: 100 + i for i, k in enumerate(keys)})
        leaf = NodeId(1, 3)
        comm.send_secret_up(leaf, keys, corrupted=set())
        outcome = comm.reveal(tree.parent(leaf), keys, corrupted=set())
        for i, key in enumerate(keys):
            for values in outcome.leaf_values.values():
                assert values[key] == 100 + i


class TestLemma3Secrecy:
    def test_secret_hidden_from_small_coalition(self):
        """Lemma 3(1): no bad node on the path -> adversary learns nothing."""
        tree, links, comm = build_comm(threshold=1 / 2)
        key = (2, 0)
        comm.initial_share(2, {key: 55})
        # Coalition: 25% of processors, chosen before the dealing's node is
        # known to be good.
        rng = random.Random(10)
        coalition = set(rng.sample(range(27), 6))
        leaf = NodeId(1, 2)
        leaf_members = set(tree.members(leaf))
        bad_in_leaf = len(leaf_members & coalition)
        can = comm.adversary_can_reconstruct(key, coalition)
        threshold = comm._threshold(len(leaf_members))
        if bad_in_leaf < threshold:
            assert not can
        else:
            assert can

    def test_secret_revealed_with_majority_coalition(self):
        tree, links, comm = build_comm(threshold=1 / 2)
        key = (4, 0)
        comm.initial_share(4, {key: 66})
        leaf = NodeId(1, 4)
        coalition = set(tree.members(leaf))  # whole committee corrupted
        assert comm.adversary_can_reconstruct(key, coalition)

    def test_secrecy_preserved_after_send_up(self):
        """Re-sharing up a good path must not leak the secret."""
        tree, links, comm = build_comm(threshold=1 / 2)
        key = (6, 0)
        comm.initial_share(6, {key: 77})
        leaf = NodeId(1, 6)
        comm.send_secret_up(leaf, [key], corrupted=set())
        rng = random.Random(11)
        coalition = set(rng.sample(range(27), 5))
        parent = tree.parent(leaf)
        parent_members = tree.members(parent)
        bad_fraction = len(set(parent_members) & coalition) / len(
            parent_members
        )
        if bad_fraction < 1 / 3:
            assert not comm.adversary_can_reconstruct(key, coalition)

    def test_erasure_blocks_late_coalitions(self):
        """After send-up + erasure, corrupting the whole *leaf* gains
        nothing: the shares now live in the parent."""
        tree, links, comm = build_comm(threshold=1 / 2)
        key = (8, 0)
        comm.initial_share(8, {key: 88})
        leaf = NodeId(1, 8)
        comm.send_secret_up(leaf, [key], corrupted=set())
        coalition = set(tree.members(leaf)) - set(
            tree.members(tree.parent(leaf))
        )
        if coalition:
            assert not comm.adversary_can_reconstruct(key, coalition)


class TestLedgerSnapshotPercentiles:
    """Per-processor sent-bit percentiles on :meth:`BitLedger.snapshot`.

    The telemetry bridge reuses these straight from ``as_row()``, so the
    distribution summary and its edge cases are pinned here.
    """

    def test_percentiles_match_distribution(self):
        from repro.net import percentile

        ledger = BitLedger(10)
        for p in range(10):
            ledger.record_abstract(p, (p + 1) % 10, 100 * (p + 1))
        snap = ledger.snapshot()
        per_processor = [ledger.bits_sent_by(p) for p in range(10)]
        assert snap.p50_bits_per_processor == percentile(per_processor, 50)
        assert snap.p90_bits_per_processor == percentile(per_processor, 90)
        assert snap.p99_bits_per_processor == percentile(per_processor, 99)
        # Ordered distribution: the summary must be monotone and bounded
        # by the max the ledger already reports.
        assert (
            snap.p50_bits_per_processor
            <= snap.p90_bits_per_processor
            <= snap.p99_bits_per_processor
            <= snap.max_bits_per_processor
        )

    def test_skew_shows_up_in_the_tail(self):
        ledger = BitLedger(20)
        ledger.record_abstract(0, 1, 10_000)  # one hot processor
        snap = ledger.snapshot()
        assert snap.p50_bits_per_processor == 0
        assert snap.p99_bits_per_processor > snap.p50_bits_per_processor

    def test_empty_ledger_is_all_zero(self):
        snap = BitLedger(5).snapshot()
        assert snap.p50_bits_per_processor == 0
        assert snap.p90_bits_per_processor == 0
        assert snap.p99_bits_per_processor == 0

    def test_as_row_carries_the_percentiles(self):
        ledger = BitLedger(4)
        ledger.record_abstract(2, 3, 64)
        row = ledger.snapshot().as_row()
        for key in (
            "p50_bits_per_processor",
            "p90_bits_per_processor",
            "p99_bits_per_processor",
        ):
            assert key in row


class TestSendOpenGuards:
    def test_failed_leaves_do_not_elect_adversary_value(self):
        """A leaf whose good members failed to reconstruct must not be
        spoken for by its corrupted minority."""
        tree, links, comm = build_comm()
        key = (1, 0)
        # Fabricate: all leaves failed (None), some corrupted members.
        leaf_values = {
            leaf: {key: None} for leaf in tree.nodes_on_level(1)
        }
        corrupted = set(range(5))
        views = comm.send_open(
            NodeId(2, 0), [key], leaf_values, corrupted,
            bad_value_fn=lambda k, p: 666,
        )
        for member, view in views.items():
            assert view[key] is None
