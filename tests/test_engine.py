"""Tests for the repro.engine subsystem.

The engine's central contract: a trial's outcome is a pure function of
its spec — *which backend executes it must be unobservable*.  These
tests pin that down (serial == process pool == batch, bit for bit),
plus the aggregation arithmetic, batch-multiplexing isolation, and the
repository-wide seeded-randomness audit the engine's reproducibility
rests on.
"""

import pathlib
import re

import pytest

from repro.engine import (
    BatchBackend,
    Engine,
    EngineError,
    ExperimentSpec,
    LedgerStats,
    ProcessPoolBackend,
    SerialBackend,
    TrialResult,
    get_backend,
    get_runner,
    make_context,
    merge_ledger_stats,
    percentile,
    register,
    run_one_trial,
    runner_names,
)
from repro.engine.registry import ExperimentRunner, drive_instance
from repro.net.rng import child_rng, derive_seed, fork_rng

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src"


# -- spec layer -------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(EngineError):
        ExperimentSpec(runner="vss-coin", n=7, trials=0)
    with pytest.raises(EngineError):
        ExperimentSpec(runner="vss-coin", n=0, trials=1)


def test_spec_params_normalise_to_sorted_tuple():
    a = ExperimentSpec(
        runner="vss-coin", n=7, trials=1, params={"b": 2, "a": 1}
    )
    b = ExperimentSpec(
        runner="vss-coin", n=7, trials=1, params={"a": 1, "b": 2}
    )
    assert a == b
    assert a.params == (("a", 1), ("b", 2))
    assert a.param_dict() == {"a": 1, "b": 2}


def test_trial_seeds_deterministic_and_distinct():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=16, seed=5)
    seeds = [spec.trial_seed(i) for i in range(spec.trials)]
    assert seeds == [spec.trial_seed(i) for i in range(spec.trials)]
    assert len(set(seeds)) == spec.trials
    # Derivation depends only on (seed, runner, index) — backend-free.
    assert seeds[3] == derive_seed(5, "engine", "vss-coin", 3)


def test_make_context_bounds():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=2)
    with pytest.raises(EngineError):
        make_context(spec, 2)
    ctx = make_context(spec, 1)
    assert ctx.n == 7
    assert ctx.seed == spec.trial_seed(1)


# -- backend identity: the acceptance property ----------------------------------------


@pytest.mark.parametrize(
    "spec",
    [
        ExperimentSpec(
            runner="vss-coin", n=7, trials=5, seed=11,
            params={"adversary": "withhold"},
        ),
        ExperimentSpec(
            runner="unreliable-coin-ba", n=40, trials=4, seed=3,
            params={"num_rounds": 2},
        ),
        ExperimentSpec(
            runner="sampler-quality", n=60, trials=3, seed=9,
            params={"r": 20, "s": 60, "degree": 8, "inner_trials": 4},
        ),
    ],
    ids=["vss-coin", "unreliable-coin-ba", "sampler-quality"],
)
def test_serial_process_batch_bit_identical(spec):
    serial = SerialBackend().run_trials(spec)
    pooled = ProcessPoolBackend(workers=2, chunk_size=2).run_trials(spec)
    batched = BatchBackend().run_trials(spec)
    assert serial == pooled
    assert serial == batched
    assert [t.trial_index for t in serial] == list(range(spec.trials))


def test_process_pool_chunking_covers_all_trials():
    backend = ProcessPoolBackend(workers=3, chunk_size=None)
    for trials in (1, 2, 7, 24, 25):
        chunks = backend.plan(trials).indices()
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(trials))


def test_single_worker_pool_degrades_to_serial():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=2, seed=1)
    assert (
        ProcessPoolBackend(workers=1).run_trials(spec)
        == SerialBackend().run_trials(spec)
    )


# -- backend lifecycle: idempotent close, context managers ------------------------------


def test_backends_are_idempotently_closable_context_managers():
    """Every backend supports `with backend:` and double-close —
    the lifecycle contract pools/sockets hang off."""
    from repro.engine import AsyncBackend, HybridBackend

    backends = [
        SerialBackend(),
        ProcessPoolBackend(workers=2),
        BatchBackend(),
        AsyncBackend(),
        HybridBackend(workers=2),
    ]
    for backend in backends:
        with backend as entered:
            assert entered is backend
        backend.close()
        backend.close()  # idempotent


def test_backend_usable_after_close():
    """close() releases resources but leaves the backend reusable."""
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=2, seed=1)
    backend = ProcessPoolBackend(workers=2, chunk_size=1)
    first = backend.run_trials(spec)
    backend.close()
    assert backend.run_trials(spec) == first


def test_engine_releases_backend_on_error_paths():
    """A backend that dies mid-run is closed before the error
    propagates — no orphaned pools or sockets."""

    class ExplodingBackend(SerialBackend):
        def __init__(self):
            self.closed = 0

        def run_trials(self, spec):
            raise RuntimeError("backend blew up")

        def close(self):
            self.closed += 1

    backend = ExplodingBackend()
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=1, seed=0)
    with pytest.raises(RuntimeError, match="backend blew up"):
        Engine(backend).run(spec)
    assert backend.closed == 1


def test_engine_is_a_context_manager():
    class ClosableBackend(SerialBackend):
        def __init__(self):
            self.closed = 0

        def close(self):
            self.closed += 1

    backend = ClosableBackend()
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=1, seed=0)
    with Engine(backend) as engine:
        assert engine.run(spec).failure_count == 0
    assert backend.closed == 1


# -- ledger merge arithmetic -----------------------------------------------------------


def test_ledger_stats_merge_arithmetic():
    a = LedgerStats(
        total_bits=100, total_messages=10, max_bits_per_processor=40,
        rounds=3, phase_bits=(("deal", 60), ("reveal", 40)),
    )
    b = LedgerStats(
        total_bits=50, total_messages=5, max_bits_per_processor=45,
        rounds=2, phase_bits=(("deal", 50),),
    )
    merged = a.merge(b)
    assert merged.total_bits == 150
    assert merged.total_messages == 15
    assert merged.max_bits_per_processor == 45  # max, not sum
    assert merged.rounds == 5
    assert dict(merged.phase_bits) == {"deal": 110, "reveal": 40}


def test_ledger_merge_associative_commutative():
    stats = [
        LedgerStats(total_bits=b, total_messages=m,
                    max_bits_per_processor=x, rounds=r)
        for b, m, x, r in [(10, 1, 5, 1), (20, 2, 9, 2), (30, 3, 7, 3)]
    ]
    forward = merge_ledger_stats(stats)
    backward = merge_ledger_stats(list(reversed(stats)))
    assert forward == backward
    left = stats[0].merge(stats[1]).merge(stats[2])
    right = stats[0].merge(stats[1].merge(stats[2]))
    assert left == right == forward


def test_percentiles():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0  # linear interpolation
    assert percentile([7.0], 90) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(values, 101)


# -- batch multiplexing isolation ------------------------------------------------------


def _mixed_vss_instance(ctx):
    """Odd trials suffer crash corruption; even trials are fault-free."""
    base = get_runner("vss-coin").build_instance
    kind = "crash" if ctx.trial_index % 2 else "none"
    patched_spec = ExperimentSpec(
        runner="vss-coin",
        n=ctx.n,
        trials=ctx.spec.trials,
        seed=ctx.spec.seed,
        params={"k": ctx.n, "adversary": kind},
    )
    # Keep this trial's identity (index + seed) while flipping adversary.
    from repro.engine.spec import TrialContext

    return base(
        TrialContext(
            spec=patched_spec, trial_index=ctx.trial_index, seed=ctx.seed
        )
    )


register(
    ExperimentRunner(
        name="test-mixed-vss",
        run_trial=lambda ctx: drive_instance(_mixed_vss_instance(ctx)),
        build_instance=_mixed_vss_instance,
        description="test-only: alternating clean/corrupted vss trials",
    )
)


def test_batch_isolation_corruption_does_not_leak():
    """Corrupted and clean instances share one batch round loop; the
    clean instances' ledgers and corruption sets must be untouched."""
    spec = ExperimentSpec(runner="test-mixed-vss", n=7, trials=6, seed=2)
    serial = SerialBackend().run_trials(spec)
    batched = BatchBackend().run_trials(spec)
    # Interleaving the round loops changes nothing, trial for trial.
    assert serial == batched
    for trial in batched:
        metrics = trial.metric_dict()
        if trial.trial_index % 2:
            assert metrics["corrupted"] == 2  # t = (7-1)//3 crash
        else:
            assert metrics["corrupted"] == 0  # neighbours' crashes stay put
        assert metrics["agreed"] == 1.0


def test_batch_window_bounds_live_instances():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=5, seed=4)
    assert (
        BatchBackend(max_live=2).run_trials(spec)
        == BatchBackend(max_live=64).run_trials(spec)
    )


def test_batch_falls_back_to_serial_for_unbatchable_runner():
    spec = ExperimentSpec(
        runner="sampler-quality", n=60, trials=2, seed=1,
        params={"r": 20, "s": 60, "degree": 4, "inner_trials": 3},
    )
    assert (
        BatchBackend().run_trials(spec)
        == SerialBackend().run_trials(spec)
    )


# -- the wave-bulk preparation hook ----------------------------------------------------


def test_prepare_wave_keeps_batch_bit_identical_to_serial():
    """vss-coin declares ``prepare_wave`` (bulk pre-dealing); a batched
    run with the hook active must still match serial bit for bit —
    including across wave boundaries (max_live smaller than trials)."""
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=6, seed=11)
    serial = SerialBackend().run_trials(spec)
    assert BatchBackend(max_live=2).run_trials(spec) == serial
    assert BatchBackend(max_live=64).run_trials(spec) == serial


def _raise_prep(instances):
    raise RuntimeError("prep boom")


register(
    ExperimentRunner(
        name="test-exploding-prepare",
        build_instance=_mixed_vss_instance,
        prepare_wave=_raise_prep,
        description="test-only: wave preparation hook raises",
    )
)


def test_prepare_wave_failure_fails_the_whole_wave():
    """A raising prepare hook may have mutated any instance in its
    wave, so the whole wave becomes failed results — while the serial
    path (which never runs the hook) is unaffected."""
    spec = ExperimentSpec(
        runner="test-exploding-prepare", n=7, trials=4, seed=5
    )
    batched = BatchBackend(max_live=2).run_trials(spec)
    assert [r.trial_index for r in batched] == [0, 1, 2, 3]
    assert all(not r.ok for r in batched)
    assert "prep boom" in batched[0].failure
    serial = SerialBackend().run_trials(spec)
    assert all(r.ok for r in serial)


# -- failure containment ---------------------------------------------------------------


def _exploding_trial(ctx):
    raise RuntimeError(f"boom in trial {ctx.trial_index}")


register(
    ExperimentRunner(
        name="test-exploding",
        run_trial=_exploding_trial,
        description="test-only: always raises",
    )
)


def _fragile_vss_instance(ctx):
    """Trial 1's construction explodes; the others are clean vss coins."""
    if ctx.trial_index == 1:
        raise RuntimeError(f"bad build in trial {ctx.trial_index}")
    return _mixed_vss_instance(ctx)


register(
    ExperimentRunner(
        name="test-fragile-vss",
        run_trial=lambda ctx: drive_instance(_fragile_vss_instance(ctx)),
        build_instance=_fragile_vss_instance,
        description="test-only: one trial's builder raises",
    )
)


def test_batch_contains_crashing_trial():
    """A raising trial in a batch wave becomes a failed TrialResult —
    identically to the serial backend — instead of killing the sweep."""
    spec = ExperimentSpec(runner="test-fragile-vss", n=7, trials=4, seed=3)
    serial = SerialBackend().run_trials(spec)
    batched = BatchBackend().run_trials(spec)
    assert serial == batched
    assert not serial[1].ok
    assert "bad build in trial 1" in serial[1].failure
    assert [t.ok for t in serial] == [True, False, True, True]


def test_crashed_trial_becomes_failed_result():
    spec = ExperimentSpec(runner="test-exploding", n=3, trials=2, seed=0)
    results = SerialBackend().run_trials(spec)
    assert all(not r.ok for r in results)
    assert "boom in trial 1" in results[1].failure
    engine_result = Engine("serial").run(spec)
    assert engine_result.failure_count == 2
    assert engine_result.success_rate() == 0.0


def test_unknown_runner_and_backend_fail_fast():
    with pytest.raises(EngineError, match="unknown experiment runner"):
        run_one_trial(
            ExperimentSpec(runner="nope", n=3, trials=1), 0
        )
    with pytest.raises(EngineError, match="unknown backend"):
        get_backend("quantum")
    assert "vss-coin" in runner_names()


# -- aggregation and rendering ---------------------------------------------------------


def test_experiment_result_aggregates():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=4, seed=8)
    result = Engine("serial").run(spec)
    assert result.backend == "serial"
    summary = result.summary("agreed")
    assert summary.count == 4
    assert summary.mean == 1.0
    merged = result.merged_ledger()
    assert merged.total_bits == sum(
        t.ledger.total_bits for t in result.trials
    )
    assert merged.max_bits_per_processor == max(
        t.ledger.max_bits_per_processor for t in result.trials
    )
    text = result.to_table().to_text()
    assert "agreed" in text
    assert "ledger.total_bits" in text
    assert "4 trials, 0 failures" in text


def test_trial_result_make_sorts_metrics():
    spec = ExperimentSpec(runner="vss-coin", n=7, trials=1, seed=0)
    ctx = make_context(spec, 0)
    result = TrialResult.make(ctx, metrics={"z": 1, "a": 2.5})
    assert result.metrics == (("a", 2.5), ("z", 1.0))
    assert result.metric_dict() == {"a": 2.5, "z": 1.0}


# -- seeded-randomness audit (satellite: RNG plumbing) ---------------------------------

#: ``random.<global-function>(...)`` — module-level stream usage.
_BARE_RANDOM = re.compile(
    r"\brandom\.(random|randint|randrange|choice|choices|shuffle|sample|"
    r"getrandbits|uniform|gauss|betavariate|seed)\s*\("
)
#: ``random.Random()`` with no seed — OS-entropy construction.
_UNSEEDED_RNG = re.compile(r"\brandom\.Random\(\s*\)")


def test_no_unseeded_randomness_in_library():
    """Engine reproducibility rests on every stream being seeded.

    Guards the audit result: no module under ``src/repro`` consumes the
    ``random`` module's global state or builds an unseeded ``Random``.
    (``field.py``'s Miller-Rabin helper uses a fixed-constant-seeded
    stream, which both patterns permit.)
    """
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        text = path.read_text()
        for pattern in (_BARE_RANDOM, _UNSEEDED_RNG):
            for match in pattern.finditer(text):
                line = text[: match.start()].count("\n") + 1
                offenders.append(f"{path.name}:{line}: {match.group(0)}")
    assert not offenders, (
        "unseeded/global randomness found:\n" + "\n".join(offenders)
    )


def test_fork_rng_deterministic_and_independent():
    parent_a = child_rng(7, "parent")
    parent_b = child_rng(7, "parent")
    fork_1 = fork_rng(parent_a, "left")
    fork_2 = fork_rng(parent_b, "left")
    assert fork_1.random() == fork_2.random()  # same lineage, same stream
    parent_c = child_rng(7, "parent")
    left = fork_rng(parent_c, "left")
    right = fork_rng(parent_c, "right")
    assert left.random() != right.random()


def test_tree_communicator_requires_and_respects_seeded_rng():
    from repro.core.communication import (
        CommunicationError,
        TreeCommunicator,
    )
    from repro.core.parameters import ProtocolParameters
    from repro.crypto.field import DEFAULT_FIELD
    from repro.net.accounting import BitLedger
    from repro.topology.links import LinkStructure
    from repro.topology.tree import NodeId, TreeTopology

    params = ProtocolParameters.simulation(27)

    def build(rng):
        tree = TreeTopology(
            n=params.n, q=params.q, k1=params.k1,
            rng=child_rng(1, "tree"),
        )
        links = LinkStructure(
            tree,
            uplink_degree=params.uplink_degree,
            ell_link_degree=params.ell_link_degree,
            intra_degree=params.intra_degree,
            rng=child_rng(1, "links"),
        )
        comm = TreeCommunicator(
            tree, links, DEFAULT_FIELD, BitLedger(params.n), rng=rng
        )
        comm.initial_share(0, {(0, 0): 123})
        return comm

    # Passing None explicitly must fail loudly, never fall back to a
    # shared stream (trials would silently correlate).
    with pytest.raises(CommunicationError, match="seeded rng"):
        build(None)

    first = build(child_rng(1, "comm"))
    second = build(child_rng(1, "comm"))
    # Identical child streams deal identical shares.
    key, leaf = (0, 0), NodeId(1, 0)
    assert [
        r.value for pid in sorted(first.tree.members(leaf))
        for r in first.records_at(leaf, pid, key)
    ] == [
        r.value for pid in sorted(second.tree.members(leaf))
        for r in second.records_at(leaf, pid, key)
    ]
