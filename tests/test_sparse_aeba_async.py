"""Tests for Algorithm 5 over the async engine (sparse synchronizer)."""

import pytest

from repro.asynchrony import RandomScheduler, TargetedDelayScheduler
from repro.asynchrony.sparse_aeba import (
    OracleCoinView,
    run_async_sparse_aeba,
)
from repro.asynchrony.scheduler import AsyncAdversary


def test_oracle_coin_is_shared_and_stable():
    coin = OracleCoinView(seed=1)
    assert coin.view(3, 0) == coin.view(3, 7)
    assert coin.view(3, 0) in (0, 1)
    bits = {coin.view(r, 0) for r in range(32)}
    assert bits == {0, 1}


def test_unanimous_inputs_agree_fault_free():
    n = 30
    outcome = run_async_sparse_aeba(n, [1] * n, graph_seed=1)
    assert outcome.agreed_bit == 1
    assert outcome.agreement_fraction == 1.0


def test_split_inputs_converge_with_good_coins():
    n = 30
    inputs = [i % 2 for i in range(n)]
    outcome = run_async_sparse_aeba(
        n, inputs, coin_seed=2, graph_seed=2,
        scheduler=RandomScheduler(2),
    )
    assert outcome.agreed_bit in (0, 1)
    assert outcome.almost_everywhere


def test_random_scheduling_does_not_break_agreement():
    n = 24
    for seed in range(3):
        outcome = run_async_sparse_aeba(
            n, [1] * n, graph_seed=seed,
            scheduler=RandomScheduler(seed),
        )
        assert outcome.agreed_bit == 1
        assert outcome.agreement_fraction == 1.0


def test_starvation_tolerated():
    n = 24
    outcome = run_async_sparse_aeba(
        n, [1] * n, graph_seed=3,
        scheduler=TargetedDelayScheduler(victims={0, 1}, seed=3),
    )
    assert outcome.agreed_bit == 1
    assert outcome.agreement_fraction == 1.0


def test_per_processor_cost_is_subquadratic():
    """The headline: degree x rounds envelopes per processor, not n."""
    n = 40
    outcome = run_async_sparse_aeba(n, [1] * n, graph_seed=4)
    per_round_messages = outcome.degree
    # Each processor sends at most (rounds + 2) * degree envelopes; the
    # whole-run bit count divided by rounds must be O(degree), far
    # below n - 1 messages per round of an all-to-all synchronizer.
    sent = outcome.result.ledger.total_messages() / n
    assert sent <= (outcome.num_rounds + 3) * per_round_messages
    assert outcome.degree < n - 1


def test_cost_scales_with_degree_not_n():
    costs = {}
    for n in (24, 48):
        outcome = run_async_sparse_aeba(
            n, [1] * n, degree=8, num_rounds=8, graph_seed=5
        )
        costs[n] = outcome.max_bits_per_processor
        assert outcome.agreed_bit == 1
    # Doubling n with fixed degree/rounds leaves per-processor cost flat
    # (within envelope-size noise).
    assert costs[48] <= costs[24] * 1.5


class AsyncCrashSome(AsyncAdversary):
    """Crashes a fixed set from the start (silent corruption)."""

    def __init__(self, n, crashed):
        super().__init__(n, budget=len(crashed))
        self._crashed = set(crashed)

    def select_corruptions(self, step):
        return self._crashed

    def on_deliver(self, step, delivered):
        return []


def test_crashes_within_neighborhood_slack_tolerated():
    n = 30
    crashed = {27, 28, 29}
    outcome = run_async_sparse_aeba(
        n, [1] * n, degree=12, num_rounds=8, graph_seed=6,
        adversary=AsyncCrashSome(n, crashed),
        sync_fault_bound=4,
    )
    assert outcome.agreed_bit == 1
    assert outcome.agreement_fraction >= 0.9


def test_input_validation():
    with pytest.raises(ValueError):
        run_async_sparse_aeba(5, [1, 0])
