"""Integration tests for the almost-everywhere tournament (Algorithm 2).

These run the full pipeline at small n; heavier sweeps live in the
benchmarks (E2, E6).
"""

import random

import pytest

from repro.adversary.adaptive import (
    BinStuffingAdversary,
    GreedyElectionAdversary,
    TournamentAdversary,
)
from repro.core.almost_everywhere import Tournament, run_almost_everywhere_ba
from repro.core.parameters import ProtocolParameters

N = 27


@pytest.fixture(scope="module")
def fault_free_result():
    return run_almost_everywhere_ba(N, inputs=[1] * N, seed=11)


@pytest.fixture(scope="module")
def split_result():
    return run_almost_everywhere_ba(
        N, inputs=[p % 2 for p in range(N)], seed=12
    )


class TestFaultFree:
    def test_full_agreement(self, fault_free_result):
        assert fault_free_result.agreement_fraction() == 1.0

    def test_validity_unanimous(self, fault_free_result):
        # Every good input is 1, so the output must be 1.
        assert fault_free_result.agreed_bit() == 1
        assert fault_free_result.is_valid()

    def test_all_coin_rounds_good(self, fault_free_result):
        assert fault_free_result.good_coin_rounds == (
            fault_free_result.coin_rounds
        )

    def test_level_stats_cover_levels(self, fault_free_result):
        levels = [ls.level for ls in fault_free_result.level_stats]
        assert levels == sorted(levels)
        assert levels[0] == 2

    def test_all_arrays_good(self, fault_free_result):
        for ls in fault_free_result.level_stats:
            assert ls.good_candidate_fraction == 1.0
            assert ls.good_winner_fraction == 1.0

    def test_no_secrets_leaked_fault_free(self, fault_free_result):
        """Lemma 3(1): with no bad nodes, nothing is readable early."""
        for ls in fault_free_result.level_stats:
            assert ls.secrets_audited > 0
            assert ls.secrets_compromised == 0

    def test_split_inputs_agree(self, split_result):
        assert split_result.agreement_fraction() >= 0.95
        assert split_result.is_valid()

    def test_ledger_populated(self, fault_free_result):
        assert fault_free_result.ledger.total_bits() > 0
        assert fault_free_result.ledger.max_bits_per_processor() > 0


class TestInputValidation:
    def test_wrong_input_length(self):
        params = ProtocolParameters.simulation(N)
        with pytest.raises(ValueError):
            Tournament(params, [1] * 5, TournamentAdversary(N, 0))


class TestAgainstAdversaries:
    def test_bin_stuffing_bounded_loss(self):
        """Lemma 6's shape: good-array fraction decays boundedly per level."""
        adv = BinStuffingAdversary(N, budget=4, seed=21)
        result = run_almost_everywhere_ba(
            N, inputs=[p % 2 for p in range(N)], adversary=adv, seed=22
        )
        for ls in result.level_stats:
            # 4/27 initial bad arrays; winners stay majority-good.
            assert ls.good_winner_fraction >= 0.5
        assert result.is_valid()

    def test_greedy_winner_corruption_gains_nothing(self):
        """The paper's core claim: corrupting an array's owner after it
        wins does not make the array bad."""
        params = ProtocolParameters.simulation(N)
        adv = GreedyElectionAdversary(
            N, budget=params.corruption_budget, seed=23
        )
        result = run_almost_everywhere_ba(
            N, inputs=[1] * N, adversary=adv, seed=24
        )
        # The adversary spent its budget, yet every array stayed good.
        assert len(result.corrupted) > 0
        for ls in result.level_stats:
            assert ls.good_candidate_fraction == 1.0
            assert ls.good_winner_fraction == 1.0

    def test_agreement_under_moderate_adversary(self):
        adv = BinStuffingAdversary(N, budget=3, seed=25)
        result = run_almost_everywhere_ba(
            N, inputs=[1] * N, adversary=adv, seed=26
        )
        assert result.agreement_fraction() >= 0.9
        assert result.agreed_bit() == 1

    def test_corrupted_excluded_from_agreement_stats(self):
        adv = BinStuffingAdversary(N, budget=3, seed=27)
        result = run_almost_everywhere_ba(
            N, inputs=[1] * N, adversary=adv, seed=28
        )
        for pid in result.corrupted:
            assert pid not in result.good_votes()


class TestCoinSubsequence:
    def test_output_words_revealed(self):
        result = run_almost_everywhere_ba(
            N, inputs=[1] * N, seed=31, output_words=1
        )
        assert len(result.output_truth) == len(result.root_contestants)
        # Fault-free: every word has dealer truth and is widely learned.
        assert all(t is not None for t in result.output_truth)
        learned = 0
        for p, views in result.output_views.items():
            if views and views[0] == result.output_truth[0]:
                learned += 1
        assert learned >= 0.9 * N

    def test_no_output_words_by_default(self, fault_free_result):
        assert fault_free_result.output_views == {}
        assert fault_free_result.output_truth == []


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = run_almost_everywhere_ba(N, inputs=[1] * N, seed=77)
        b = run_almost_everywhere_ba(N, inputs=[1] * N, seed=77)
        assert a.votes == b.votes
        assert a.ledger.total_bits() == b.ledger.total_bits()

    def test_different_seed_different_traffic(self):
        a = run_almost_everywhere_ba(N, inputs=[1] * N, seed=78)
        b = run_almost_everywhere_ba(N, inputs=[1] * N, seed=79)
        assert a.ledger.total_bits() != b.ledger.total_bits()
