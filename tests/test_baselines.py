"""Tests for the baseline agreement protocols (benchmark E12 comparators)."""

import random

import pytest

from repro.adversary.behaviors import (
    AntiMajorityBehavior,
    EquivocatingBehavior,
    SilentBehavior,
)
from repro.adversary.static import StaticByzantineAdversary
from repro.baselines.benor import benor_fault_bound, run_benor
from repro.baselines.phase_king import (
    phase_king_fault_bound,
    run_phase_king,
)
from repro.baselines.rabin import run_rabin


class TestPhaseKing:
    def test_fault_bound(self):
        assert phase_king_fault_bound(4) == 0
        assert phase_king_fault_bound(5) == 1
        assert phase_king_fault_bound(20) == 4

    def test_fault_free_unanimous(self):
        for bit in (0, 1):
            result = run_phase_king(12, [bit] * 12)
            values = set(result.good_outputs().values())
            assert values == {bit}

    def test_fault_free_split_agrees(self):
        result = run_phase_king(12, [p % 2 for p in range(12)])
        values = set(result.good_outputs().values())
        assert len(values) == 1

    def test_tolerates_byzantine_minority(self):
        n = 21
        f = phase_king_fault_bound(n)
        adversary = StaticByzantineAdversary(
            n, targets=set(range(f)), behavior=EquivocatingBehavior(),
            seed=1,
        )
        result = run_phase_king(n, [1] * n, adversary=adversary)
        good_values = set(result.good_outputs().values())
        assert good_values == {1}  # validity + agreement

    def test_anti_majority_adversary(self):
        n = 21
        f = phase_king_fault_bound(n)
        adversary = StaticByzantineAdversary(
            n, targets=set(range(f)), behavior=AntiMajorityBehavior(),
            seed=2,
        )
        result = run_phase_king(n, [p % 2 for p in range(n)], adversary=adversary)
        assert len(set(result.good_outputs().values())) == 1

    def test_quadratic_bits(self):
        """Per-processor bits grow ~n^2: the barrier the paper breaks."""
        costs = {}
        for n in (8, 16, 32):
            result = run_phase_king(n, [1] * n)
            costs[n] = result.ledger.max_bits_per_processor()
        # Doubling n should much-more-than-double per-processor bits.
        assert costs[16] > 3 * costs[8]
        assert costs[32] > 3 * costs[16]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_phase_king(4, [1, 0])


class TestRabin:
    def test_fault_free_unanimous(self):
        for bit in (0, 1):
            result = run_rabin(16, [bit] * 16, seed=3)
            assert set(result.good_outputs().values()) == {bit}

    def test_split_inputs_converge(self):
        result = run_rabin(16, [p % 2 for p in range(16)], seed=4)
        values = set(result.good_outputs().values())
        assert len(values) == 1

    def test_fast_rounds(self):
        """O(1) expected rounds with the trusted coin."""
        result = run_rabin(32, [p % 2 for p in range(32)], seed=5)
        assert result.rounds < 16

    def test_tolerates_minority(self):
        n = 20
        adversary = StaticByzantineAdversary(
            n, targets=set(range(4)), behavior=AntiMajorityBehavior(),
            seed=6,
        )
        result = run_rabin(n, [1] * n, adversary=adversary, seed=7)
        assert set(result.good_outputs().values()) == {1}

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_rabin(4, [1])


class TestBenOr:
    def test_fault_bound(self):
        assert benor_fault_bound(5) == 0
        assert benor_fault_bound(6) == 1
        assert benor_fault_bound(26) == 5

    def test_fault_free_unanimous(self):
        for bit in (0, 1):
            result = run_benor(15, [bit] * 15, seed=8)
            assert set(result.good_outputs().values()) == {bit}

    def test_split_inputs_eventually_converge(self):
        result = run_benor(
            15, [p % 2 for p in range(15)], max_phases=128, seed=9
        )
        values = set(result.good_outputs().values())
        assert len(values) == 1

    def test_silent_faults(self):
        n = 16
        adversary = StaticByzantineAdversary(
            n, targets={0, 1}, behavior=SilentBehavior(), seed=10
        )
        result = run_benor(n, [1] * n, adversary=adversary, seed=11)
        assert set(result.good_outputs().values()) == {1}

    def test_slower_than_rabin_on_splits(self):
        """The global coin's value: Rabin converges in O(1) rounds where
        local-coin Ben-Or wanders."""
        n = 20
        rabin_rounds = []
        benor_rounds = []
        for seed in range(5):
            r = run_rabin(n, [p % 2 for p in range(n)], seed=seed)
            b = run_benor(
                n, [p % 2 for p in range(n)], max_phases=256, seed=seed
            )
            rabin_rounds.append(r.rounds)
            benor_rounds.append(b.rounds)
        assert sum(rabin_rounds) <= sum(benor_rounds)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_benor(4, [1])
