"""Tests for tree visualization and report writers."""

import random

import pytest

from repro.analysis.reporting import Table, tables_to_markdown
from repro.topology.tree import NodeId, TreeTopology
from repro.topology.visualize import render_node, render_paths, render_tree


def small_tree():
    return TreeTopology(n=9, q=3, k1=3, rng=random.Random(0))


class TestRenderTree:
    def test_levels_root_first(self):
        text = render_tree(small_tree())
        lines = text.splitlines()
        assert lines[0].startswith("L3")
        assert lines[-1].startswith("L1")

    def test_node_counts_shown(self):
        text = render_tree(small_tree())
        assert "(9 nodes" in text
        assert "(1 nodes" in text

    def test_candidates_annotation(self):
        tree = small_tree()
        candidates = {NodeId(2, 0): [4, 5, 6]}
        text = render_tree(tree, candidates=candidates)
        assert "4,5,6 |" in text

    def test_member_eliding(self):
        tree = TreeTopology(n=30, q=3, k1=5, rng=random.Random(1))
        text = render_tree(tree, member_limit=2, max_nodes_per_level=2)
        assert "+3" in text or "+" in text
        assert "... +" in text

    def test_render_node_without_candidates(self):
        tree = small_tree()
        text = render_node(tree, NodeId(1, 0))
        assert text.startswith("[") and text.endswith("]")
        assert "|" not in text

    def test_render_paths(self):
        text = render_paths(small_tree(), 4)
        assert text.startswith("L1N4")
        assert "L3N0" in text
        assert "->" in text


class TestTable:
    def make(self):
        t = Table("demo", ["a", "b"], note="a note")
        t.add_row(1, "x")
        t.add_row(22, "yy")
        return t

    def test_add_row_validates_width(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_text_output(self):
        text = self.make().to_text()
        assert "=== demo ===" in text
        assert "a note" in text
        assert "22" in text

    def test_markdown_output(self):
        md = self.make().to_markdown()
        assert "### demo" in md
        assert "| a | b |" in md
        assert "| 22 | yy |" in md

    def test_csv_output(self):
        csv = self.make().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == "22,yy"

    def test_csv_escaping(self):
        t = Table("q", ["v"])
        t.add_row('he said "hi", twice')
        assert '"he said ""hi"", twice"' in t.to_csv()

    def test_tables_to_markdown(self):
        md = tables_to_markdown([self.make(), Table("two", ["z"])])
        assert "### demo" in md and "### two" in md
