"""Unit tests for global-coin sources and the coin subsequence."""

import random

import pytest

from repro.core.coins import (
    CoinError,
    coin_source_from_words,
    perfect_coin_source,
    unreliable_coin_source,
)
from repro.core.global_coin import GlobalCoinSubsequence, synthetic_subsequence


class TestPerfectSource:
    def test_all_rounds_good(self):
        source = perfect_coin_source(10, 5, random.Random(0))
        assert source.num_good_rounds() == 5
        assert source.num_rounds == 5

    def test_uniform_views(self):
        source = perfect_coin_source(10, 5, random.Random(0))
        for r in range(5):
            views = {source.view(r, p) for p in range(10)}
            assert len(views) == 1

    def test_view_wraps_rounds(self):
        source = perfect_coin_source(4, 2, random.Random(1))
        assert source.view(0, 0) == source.view(2, 0)


class TestUnreliableSource:
    def test_good_round_mostly_agrees(self):
        source = unreliable_coin_source(
            100, 4, good_round_indices=[0, 2],
            confused_fraction=0.1, rng=random.Random(2),
        )
        assert source.num_good_rounds() == 2
        round0 = [source.view(0, p) for p in range(100)]
        true_bit = source.rounds[0].true_bit
        agree = sum(1 for b in round0 if b == true_bit)
        assert agree >= 90

    def test_bad_round_split(self):
        source = unreliable_coin_source(
            100, 2, good_round_indices=[],
            confused_fraction=0.0, rng=random.Random(3),
        )
        round0 = [source.view(0, p) for p in range(100)]
        assert round0.count(0) == 50  # pid-parity split default

    def test_custom_adversary_bits(self):
        source = unreliable_coin_source(
            10, 1, good_round_indices=[], confused_fraction=0.0,
            rng=random.Random(4),
            adversary_bit_fn=lambda r, p: 1,
        )
        assert all(source.view(0, p) == 1 for p in range(10))

    def test_validation(self):
        with pytest.raises(CoinError):
            unreliable_coin_source(
                10, 2, [5], 0.0, random.Random(0)
            )
        with pytest.raises(CoinError):
            unreliable_coin_source(
                10, 2, [0], 1.5, random.Random(0)
            )


class TestFromWords:
    def test_unanimous_word_is_good(self):
        words = {p: [6] for p in range(5)}  # low bit 0
        source = coin_source_from_words(5, words, 1)
        assert source.rounds[0].good
        assert source.rounds[0].true_bit == 0

    def test_split_word_is_bad(self):
        words = {p: [p % 2] for p in range(4)}
        source = coin_source_from_words(4, words, 1)
        assert not source.rounds[0].good

    def test_missing_words_default_zero(self):
        words = {0: [None], 1: [None]}
        source = coin_source_from_words(2, words, 1)
        assert source.view(0, 0) == 0


class TestGlobalCoinSubsequence:
    def make(self):
        return synthetic_subsequence(
            n=20, length=6, good_indices=[0, 2, 4],
            rng=random.Random(5), confused_fraction=0.1,
        )

    def test_good_fraction(self):
        assert self.make().good_fraction() == 0.5

    def test_agreed_word_matches_truth_on_good(self):
        seq = self.make()
        for index in seq.good_indices():
            assert seq.agreed_word(index) == seq.truth[index]

    def test_agreement_fraction_high_on_good(self):
        seq = self.make()
        for index in seq.good_indices():
            assert seq.agreement_fraction(index) >= 0.8

    def test_k_sequence_range(self):
        seq = self.make()
        ks = seq.k_sequence(sqrt_n=5)
        assert len(ks) == 6
        assert all(1 <= k <= 5 for k in ks)

    def test_bit_sequence(self):
        seq = self.make()
        bits = seq.bit_sequence()
        assert len(bits) == 6
        assert set(bits) <= {0, 1}

    def test_corrupted_excluded_from_agreement(self):
        seq = self.make()
        seq.corrupted = set(range(10))
        for index in seq.good_indices():
            assert seq.agreement_fraction(index) >= 0.7
