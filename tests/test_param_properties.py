"""Property-based tests for the Param schema layer (stdlib-only).

A miniature property harness: a ``random.Random`` with a fixed seed
generates a few hundred raw values per property, so the sampling is
deterministic across runs (no hypothesis dependency, no flakiness) but
still sweeps a far wider input space than example-based tests.

Properties pinned:

* **Idempotence** — whenever ``coerce(x)`` succeeds, coercing the
  result again returns the same value of the same type: coercion is a
  retraction onto the declared type, so validated specs can be
  re-validated (the engine does exactly that) without drift.
* **Containment** — a successful coercion always lands inside the
  declared choices/bounds; violations always raise
  :class:`ScenarioError`, never any other exception.
* **Front-door totality** — ``validate_mapping`` over arbitrary key
  mappings either returns a coerced dict or raises ``ScenarioError``
  whose did-you-mean machinery never raises on its own, whatever the
  unknown key looks like.
"""

import math
import random
import string

import pytest

from repro.engine import Param, ScenarioError
from repro.engine.scenario import defaults_of, validate_mapping

SAMPLES = 300


def _rng(label: str) -> random.Random:
    return random.Random(f"param-properties:{label}")


def _raw_value(rng: random.Random):
    """One raw value of any shape a CLI or caller might hand over."""
    kind = rng.randrange(8)
    if kind == 0:
        return rng.randint(-10**6, 10**6)
    if kind == 1:
        return rng.uniform(-10**6, 10**6)
    if kind == 2:
        return str(rng.randint(-10**4, 10**4))
    if kind == 3:
        return f"{rng.uniform(-100, 100):.6f}"
    if kind == 4:
        return rng.choice(
            ["true", "false", "yes", "no", "on", "off", "0", "1"]
        )
    if kind == 5:
        return "".join(
            rng.choice(string.ascii_letters + string.digits + ". -")
            for _ in range(rng.randrange(1, 12))
        )
    if kind == 6:
        return rng.choice([True, False])
    return rng.choice([None, (), [], {}, float("nan"), float("inf")])


@pytest.mark.parametrize("ptype", [int, float, bool, str])
def test_coerce_is_idempotent(ptype):
    """coerce(coerce(x)) == coerce(x) whenever the first coercion
    succeeds — with NaN as the one float value unequal to itself."""
    param = Param("p", ptype)
    rng = _rng(f"idempotent-{ptype.__name__}")
    coerced_count = 0
    for _ in range(SAMPLES):
        raw = _raw_value(rng)
        try:
            once = param.coerce(raw)
        except ScenarioError:
            continue
        coerced_count += 1
        assert type(once) is ptype
        twice = param.coerce(once)
        assert type(twice) is ptype
        if isinstance(once, float) and math.isnan(once):
            assert math.isnan(twice)
        else:
            assert twice == once
    assert coerced_count > 0  # the property was actually exercised


def test_coerce_respects_bounds_or_raises():
    rng = _rng("bounds")
    for _ in range(SAMPLES):
        low = rng.uniform(-100, 100)
        high = low + rng.uniform(0, 100)
        param = Param("p", float, minimum=low, maximum=high)
        raw = _raw_value(rng)
        try:
            value = param.coerce(raw)
        except ScenarioError:
            continue
        assert low <= value <= high


def test_coerce_respects_choices_or_raises():
    rng = _rng("choices")
    for _ in range(SAMPLES):
        choices = tuple(
            "".join(rng.choice(string.ascii_lowercase) for _ in range(4))
            for _ in range(rng.randrange(1, 5))
        )
        param = Param("mode", str, choices=choices)
        raw = _raw_value(rng)
        try:
            value = param.coerce(raw)
        except ScenarioError:
            continue
        assert value in choices


def test_int_coercion_never_truncates():
    """A successful int coercion is exact: no fractional value (raw
    float or float-string) ever silently floors to an int."""
    param = Param("k", int)
    rng = _rng("truncation")
    for _ in range(SAMPLES):
        whole = rng.randint(-10**4, 10**4)
        fraction = rng.uniform(0.01, 0.99)
        for raw in (whole + fraction, f"{whole + fraction:.4f}"):
            with pytest.raises(ScenarioError):
                param.coerce(raw)
        assert param.coerce(float(whole)) == whole
        assert param.coerce(str(whole)) == whole


def test_validate_mapping_unknown_keys_always_scenario_error():
    """The did-you-mean machinery is total: any unknown key — close to
    a declared name, garbage, empty, weird characters — raises
    ScenarioError (never KeyError/AttributeError) with the key named."""
    schema = (
        Param("corrupt", float, 0.0),
        Param("num_rounds", int, 1),
        Param("scheduler", str, "fifo", choices=("fifo", "random")),
    )
    declared = {p.name for p in schema}
    rng = _rng("unknown-keys")
    for _ in range(SAMPLES):
        base = rng.choice(sorted(declared))
        mutation = rng.randrange(4)
        if mutation == 0:  # drop a character
            pos = rng.randrange(len(base))
            key = base[:pos] + base[pos + 1 :]
        elif mutation == 1:  # swap two characters
            pos = rng.randrange(len(base) - 1)
            key = (
                base[:pos] + base[pos + 1] + base[pos] + base[pos + 2 :]
            )
        elif mutation == 2:  # pure noise
            key = "".join(
                rng.choice(string.printable.strip() or "x")
                for _ in range(rng.randrange(1, 16))
            )
        else:  # empty-ish
            key = rng.choice(["", " ", "\t"])
        if key in declared:
            continue
        with pytest.raises(ScenarioError) as excinfo:
            validate_mapping("prop-test", schema, {key: 1})
        assert "unknown parameter" in str(excinfo.value)


def test_validate_mapping_round_trips_validated_output():
    """validate(validate(x)) == validate(x): the engine re-validates
    specs it already validated, which must be a no-op."""
    schema = (
        Param("corrupt", float, 0.0, minimum=0.0, maximum=0.5),
        Param("num_rounds", int, 1, minimum=1),
        Param("inputs", str, "split", choices=("split", "ones")),
        Param("verbose", bool, False),
    )
    rng = _rng("round-trip")
    accepted = 0
    for _ in range(SAMPLES):
        raw = {}
        if rng.random() < 0.8:
            raw["corrupt"] = rng.choice(
                [rng.uniform(0, 0.5), f"{rng.uniform(0, 0.5):.4f}"]
            )
        if rng.random() < 0.8:
            raw["num_rounds"] = rng.choice(
                [rng.randint(1, 50), str(rng.randint(1, 50))]
            )
        if rng.random() < 0.5:
            raw["inputs"] = rng.choice(["split", "ones"])
        if rng.random() < 0.5:
            raw["verbose"] = rng.choice(["true", "false", True, False, 0, 1])
        once = validate_mapping("prop-test", schema, raw)
        twice = validate_mapping("prop-test", schema, once)
        assert twice == once
        accepted += 1
    assert accepted == SAMPLES  # in-range raws always validate


def test_defaults_of_covers_every_declared_param():
    schema = (
        Param("a", int, 1),
        Param("b", float, None),
        Param("c", str, "x"),
    )
    assert defaults_of(schema) == {"a": 1, "b": None, "c": "x"}
