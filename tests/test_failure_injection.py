"""Failure-injection tests: the simulator's contract under misbehavior."""

from typing import List

import pytest

from repro.adversary.behaviors import FixedBitBehavior, SilentBehavior
from repro.adversary.flooding import FloodingAdversary
from repro.adversary.static import StaticByzantineAdversary
from repro.core.coins import perfect_coin_source
from repro.core.unreliable_coin_ba import run_unreliable_coin_ba
from repro.net.messages import Message
from repro.net.simulator import (
    NullAdversary,
    ProcessorProtocol,
    SimulationError,
    SyncNetwork,
)

import random


class ForgingProtocol(ProcessorProtocol):
    """Tries to forge another sender's identity."""

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        return [Message(self.pid + 1, 0, "x", 1)]


class MisaddressingProtocol(ProcessorProtocol):
    """Sends to a recipient outside the network."""

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        return [Message(self.pid, 999, "x", 1)]


class IdleProtocol(ProcessorProtocol):
    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        return []


class TestSimulatorContract:
    def test_sender_forgery_rejected(self):
        protocols = [ForgingProtocol(0), IdleProtocol(1)]
        net = SyncNetwork(protocols, NullAdversary(2))
        with pytest.raises(SimulationError):
            net.step(1)

    def test_unknown_recipient_rejected(self):
        protocols = [MisaddressingProtocol(0), IdleProtocol(1)]
        net = SyncNetwork(protocols, NullAdversary(2))
        with pytest.raises(SimulationError):
            net.step(1)

    def test_adversary_cannot_send_from_good_processor(self):
        class RogueAdversary(NullAdversary):
            def act(self, view):
                return [Message(1, 0, "x", 1)]  # pid 1 is not corrupted

        protocols = [IdleProtocol(0), IdleProtocol(1)]
        net = SyncNetwork(protocols, RogueAdversary(2))
        with pytest.raises(SimulationError):
            net.step(1)

    def test_run_halts_on_round_budget(self):
        protocols = [IdleProtocol(0), IdleProtocol(1)]
        net = SyncNetwork(protocols, NullAdversary(2))
        result = net.run(max_rounds=3)
        assert result.rounds == 3
        assert not result.halted  # nobody ever outputs


class TestFloodingResilience:
    def test_algorithm5_survives_flooding(self):
        """Bad processors flooding junk must not break agreement — good
        processors only count votes from graph neighbors."""
        n = 40
        source = perfect_coin_source(n, 6, random.Random(1))
        inner = StaticByzantineAdversary(
            n, targets=set(range(6)), behavior=FixedBitBehavior(0), seed=2
        )
        flooder = FloodingAdversary(inner, flood_factor=50, seed=3)
        result = run_unreliable_coin_ba(
            n, [1] * n, source, adversary=flooder, seed=4
        )
        assert result.agreed_bit() == 1
        assert result.agreement_fraction() >= 0.9

    def test_flood_bits_tracked_separately(self):
        n = 20
        source = perfect_coin_source(n, 4, random.Random(5))
        inner = StaticByzantineAdversary(
            n, targets={0}, behavior=SilentBehavior(), seed=6
        )
        flooder = FloodingAdversary(inner, flood_factor=25, seed=7)
        # Run through the network directly to inspect flood accounting.
        from repro.core.unreliable_coin_ba import (
            SparseAEBAProcessor,
            vote_threshold,
        )
        from repro.topology.sparse_graph import random_regular_graph

        graph = random_regular_graph(n, 6, random.Random(8))
        protocols = [
            SparseAEBAProcessor(
                p, 1, sorted(graph[p]), lambda i: 0, 4,
                vote_threshold(1 / 12, 0.05),
            )
            for p in range(n)
        ]
        net = SyncNetwork(protocols, flooder)
        net.run(max_rounds=6)
        assert net.flood_bits > 25 * 64
        # Good ledger untouched by the flood.
        assert net.ledger.bits_sent_by(0) == 0


class TestCrashFaults:
    def test_silent_minority_never_blocks(self):
        n = 30
        source = perfect_coin_source(n, 6, random.Random(9))
        adversary = StaticByzantineAdversary(
            n, targets=set(range(7)), behavior=SilentBehavior(), seed=10
        )
        result = run_unreliable_coin_ba(
            n, [0] * n, source, adversary=adversary, seed=11
        )
        assert result.agreed_bit() == 0
        assert result.agreement_fraction() >= 0.9

    def test_all_but_one_silent_is_degenerate_but_safe(self):
        """Far beyond the fault bound everything may stall, but no good
        processor adopts a fabricated value."""
        n = 10
        source = perfect_coin_source(n, 4, random.Random(12))
        adversary = StaticByzantineAdversary(
            n, targets=set(range(9)), behavior=SilentBehavior(), seed=13
        )
        result = run_unreliable_coin_ba(
            n, [1] * n, source, adversary=adversary, seed=14
        )
        # The lone good processor keeps a bit that was some good input.
        for pid, vote in result.good_votes().items():
            assert vote in (0, 1)
