"""Unit tests for adversary strategies and targeting policies."""

import random

import pytest

from repro.adversary.adaptive import (
    AdaptiveByzantineAdversary,
    BinStuffingAdversary,
    CorruptChattiest,
    CorruptRandomGradually,
    CorruptScheduled,
    GreedyElectionAdversary,
    NoTargeting,
    TournamentAdversary,
)
from repro.adversary.behaviors import (
    AntiMajorityBehavior,
    EquivocatingBehavior,
    FixedBitBehavior,
    KeepSplitBehavior,
    RandomBitBehavior,
    SilentBehavior,
    behavior_by_name,
)
from repro.adversary.static import StaticByzantineAdversary, random_target_set
from repro.net.messages import Message
from repro.net.simulator import AdversaryView


def make_view(round_no=1, corrupted=(0,), inbound=(), n=10):
    return AdversaryView(
        round_no=round_no,
        corrupted=set(corrupted),
        inbound=list(inbound),
        n=n,
    )


class TestBehaviors:
    rng = random.Random(0)

    def test_silent(self):
        votes = SilentBehavior().votes(make_view(), 0, [1, 2], self.rng)
        assert votes == {1: None, 2: None}

    def test_fixed(self):
        votes = FixedBitBehavior(1).votes(make_view(), 0, [1, 2], self.rng)
        assert votes == {1: 1, 2: 1}

    def test_random_bits_in_range(self):
        votes = RandomBitBehavior().votes(
            make_view(), 0, list(range(20)), self.rng
        )
        assert set(votes.values()) <= {0, 1}

    def test_equivocate_splits_by_parity(self):
        votes = EquivocatingBehavior().votes(
            make_view(), 0, [2, 3], self.rng
        )
        assert votes[2] == 0 and votes[3] == 1

    def test_anti_majority_opposes_observed(self):
        inbound = [Message(5, 0, "vote", 1), Message(6, 0, "vote", 1)]
        votes = AntiMajorityBehavior().votes(
            make_view(inbound=inbound), 0, [1], self.rng
        )
        assert votes[1] == 0

    def test_keep_split_half_and_half(self):
        votes = KeepSplitBehavior().votes(
            make_view(), 0, list(range(10)), random.Random(1)
        )
        assert sorted(votes.values()).count(0) == 5

    def test_factory(self):
        assert isinstance(behavior_by_name("silent"), SilentBehavior)
        assert isinstance(behavior_by_name("fixed1"), FixedBitBehavior)
        with pytest.raises(ValueError):
            behavior_by_name("nope")


class TestStaticAdversary:
    def test_corrupts_at_round_one(self):
        adv = StaticByzantineAdversary(10, {1, 2}, SilentBehavior())
        assert adv.select_corruptions(1) == {1, 2}
        assert adv.select_corruptions(2) == set()

    def test_budget_matches_targets(self):
        adv = StaticByzantineAdversary(10, {1, 2, 3}, SilentBehavior())
        assert adv.budget == 3

    def test_act_respects_recipients_map(self):
        adv = StaticByzantineAdversary(
            10, {0}, FixedBitBehavior(1), recipients_of={0: [5, 6]}
        )
        messages = adv.act(make_view(corrupted={0}))
        assert {m.recipient for m in messages} == {5, 6}

    def test_random_target_set_size(self):
        targets = random_target_set(100, 0.25, random.Random(3))
        assert len(targets) == 25


class TestTargetingPolicies:
    def test_no_targeting(self):
        policy = NoTargeting()
        assert policy.choose(1, set(), {}, 5, 10, random.Random(0)) == set()

    def test_chattiest_targets_loudest(self):
        policy = CorruptChattiest(per_round=1)
        chosen = policy.choose(
            2, set(), {7: 10, 3: 2}, 5, 10, random.Random(0)
        )
        assert chosen == {7}

    def test_chattiest_respects_budget(self):
        policy = CorruptChattiest(per_round=5)
        chosen = policy.choose(
            2, set(), {1: 3, 2: 2, 3: 1}, 2, 10, random.Random(0)
        )
        assert len(chosen) == 2

    def test_scheduled(self):
        policy = CorruptScheduled({3: [4, 5]})
        assert policy.choose(2, set(), {}, 9, 10, random.Random(0)) == set()
        assert policy.choose(3, set(), {}, 9, 10, random.Random(0)) == {4, 5}

    def test_gradual_random(self):
        policy = CorruptRandomGradually(per_round=2)
        chosen = policy.choose(1, {0}, {}, 5, 10, random.Random(0))
        assert len(chosen) == 2
        assert 0 not in chosen


class TestAdaptiveAdversary:
    def test_observes_and_corrupts(self):
        adv = AdaptiveByzantineAdversary(
            10, budget=2, policy=CorruptChattiest(start_round=2),
            behavior=SilentBehavior(),
        )
        adv.corrupted.add(0)
        inbound = [Message(7, 0, "vote", 1)] * 3
        adv.act(make_view(corrupted={0}, inbound=inbound))
        chosen = adv.select_corruptions(2)
        assert chosen == {7}


class TestTournamentAdversary:
    def test_budget_enforced(self):
        adv = TournamentAdversary(10, budget=2)
        taken = adv.take_over([1, 2, 3, 4])
        assert taken == {1, 2}
        assert adv.remaining_budget() == 0

    def test_greedy_corrupts_winners(self):
        adv = GreedyElectionAdversary(10, budget=3)
        taken = adv.corrupt_after_election(2, [5, 6], [0, 1, 2])
        assert taken == {5, 6}

    def test_bin_stuffing_strategies(self):
        stuff = BinStuffingAdversary(10, 2, strategy="stuff")
        assert stuff.bad_bin_choice(2, 0, 8) == 0
        spread = BinStuffingAdversary(10, 2, strategy="spread")
        picks = {spread.bad_bin_choice(2, 0, 4) for _ in range(8)}
        assert len(picks) > 1
        rand = BinStuffingAdversary(10, 2, strategy="random")
        assert 0 <= rand.bad_bin_choice(2, 0, 4) < 4

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BinStuffingAdversary(10, 2, strategy="bogus")

    def test_initial_corruptions_take_budget(self):
        adv = BinStuffingAdversary(10, budget=4)
        assert adv.initial_corruptions() == {0, 1, 2, 3}
