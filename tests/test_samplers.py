"""Unit tests for averaging samplers (Definition 2, Lemma 2)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.samplers.quality import (
    adversarial_bad_set,
    estimate_failure_fraction,
    fraction_of_bad_committees,
    measure_against_bad_set,
)
from repro.samplers.sampler import (
    Sampler,
    SamplerError,
    bipartite_links,
    paper_sampler_degree,
    sampler_existence_bound,
)


class TestConstruction:
    def test_random_dimensions(self):
        s = Sampler.random(10, 50, 5, random.Random(0))
        assert s.r == 10 and s.s == 50 and s.d == 5
        assert len(s.assignments) == 10
        assert all(len(row) == 5 for row in s.assignments)

    def test_random_without_replacement_distinct(self):
        s = Sampler.random(20, 30, 10, random.Random(1))
        for row in s.assignments:
            assert len(set(row)) == 10

    def test_with_replacement_allows_duplicates(self):
        s = Sampler.random(
            200, 3, 3, random.Random(2), with_replacement=True
        )
        assert any(len(set(row)) < 3 for row in s.assignments)

    def test_degree_larger_than_ground_set_uses_replacement(self):
        s = Sampler.random(5, 3, 6, random.Random(3))
        assert all(len(row) == 6 for row in s.assignments)

    def test_complete_sampler(self):
        s = Sampler.complete(4, 7)
        assert all(row == tuple(range(7)) for row in s.assignments)

    def test_invalid_dimensions(self):
        with pytest.raises(SamplerError):
            Sampler(r=0, s=1, d=1, assignments=())

    def test_rows_validate_range(self):
        with pytest.raises(SamplerError):
            Sampler(r=1, s=3, d=2, assignments=((0, 5),))

    def test_row_count_validated(self):
        with pytest.raises(SamplerError):
            Sampler(r=2, s=3, d=1, assignments=((0,),))

    def test_row_degree_validated(self):
        with pytest.raises(SamplerError):
            Sampler(r=1, s=3, d=2, assignments=((0,),))

    def test_reproducibility(self):
        a = Sampler.random(10, 50, 5, random.Random(42))
        b = Sampler.random(10, 50, 5, random.Random(42))
        assert a.assignments == b.assignments


class TestQueries:
    def test_assign(self):
        s = Sampler.random(4, 10, 3, random.Random(4))
        assert s.assign(2) == s.assignments[2]

    def test_intersection_fraction(self):
        s = Sampler(r=1, s=4, d=4, assignments=((0, 1, 2, 3),))
        assert s.intersection_fraction(0, {0, 1}) == 0.5

    def test_degrees_sum(self):
        s = Sampler.random(8, 20, 5, random.Random(5))
        # Without replacement each row has 5 distinct elements.
        assert sum(s.degrees().values()) == 8 * 5

    def test_inputs_containing(self):
        s = Sampler(r=2, s=3, d=2, assignments=((0, 1), (1, 2)))
        assert s.inputs_containing(1) == [0, 1]
        assert s.inputs_containing(0) == [0]

    def test_max_degree(self):
        s = Sampler(r=2, s=3, d=2, assignments=((0, 1), (1, 2)))
        assert s.max_degree() == 2


class TestLemma2:
    def test_existence_bound_monotone_in_degree(self):
        ok_small = sampler_existence_bound(100, 100, 10, 0.2, 0.2)
        ok_large = sampler_existence_bound(100, 100, 1000, 0.2, 0.2)
        assert ok_large and (ok_large or not ok_small)

    def test_paper_degree_formula(self):
        # d = O((s/r + 1) log^3 n), minimum 1.
        d = paper_sampler_degree(r=100, s=100, n=1024)
        assert d == math.ceil(2 * 10**3)
        assert paper_sampler_degree(1, 1, 2) >= 1

    def test_random_sampler_meets_spec_on_random_bad_sets(self):
        """A well-sized random sampler should rarely exceed theta."""
        rng = random.Random(6)
        s = Sampler.random(60, 120, 40, rng)
        worst = estimate_failure_fraction(
            s, bad_set_size=40, theta=0.25, trials=20, rng=rng
        )
        assert worst <= 0.15

    def test_quality_improves_with_degree(self):
        rng = random.Random(7)
        small = Sampler.random(50, 100, 6, random.Random(7))
        large = Sampler.random(50, 100, 48, random.Random(7))
        theta = 0.15
        bad = set(range(33))
        r_small = measure_against_bad_set(small, bad, theta)
        r_large = measure_against_bad_set(large, bad, theta)
        assert r_large.delta_measured <= r_small.delta_measured

    def test_measure_reports(self):
        s = Sampler.complete(3, 10)
        report = measure_against_bad_set(s, set(range(5)), theta=0.1)
        assert report.bad_fraction == 0.5
        assert report.failing_inputs == 0  # complete sampler is exact
        assert report.delta_measured == 0.0
        assert report.worst_input_fraction == 0.5


class TestAdversarialBadSets:
    def test_greedy_targets_high_degree(self):
        s = Sampler(
            r=3, s=4, d=2, assignments=((0, 1), (0, 2), (0, 3))
        )
        assert adversarial_bad_set(s, 1) == {0}

    def test_fraction_of_bad_committees(self):
        s = Sampler(r=2, s=4, d=2, assignments=((0, 1), (2, 3)))
        # Corrupt {0, 1}: first committee fully bad, second fully good.
        assert fraction_of_bad_committees(s, {0, 1}, 0.5) == 0.5


class TestBipartiteLinks:
    def test_degree_respected(self):
        links = bipartite_links([1, 2], [10, 11, 12, 13], 2, random.Random(8))
        assert all(len(v) == 2 for v in links.values())

    def test_oversized_degree_gives_all_targets(self):
        links = bipartite_links([1], [10, 11], 5, random.Random(8))
        assert links[1] == (10, 11)

    def test_empty_targets_raises(self):
        with pytest.raises(SamplerError):
            bipartite_links([1], [], 1, random.Random(8))


@given(
    r=st.integers(min_value=1, max_value=30),
    s=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=40, deadline=None)
def test_random_sampler_always_valid(r, s, seed):
    d = min(5, s)
    sampler = Sampler.random(r, s, d, random.Random(seed))
    for x in range(r):
        row = sampler.assign(x)
        assert len(row) == d
        assert all(0 <= e < s for e in row)
