"""Unit tests for iterated secret sharing (Definition 1, Lemma 1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.iterated import ShareTree, recoverable, reshare
from repro.crypto.shamir import SecretSharingError, ShamirScheme


def small_schemes():
    return [ShamirScheme(4, 3), ShamirScheme(3, 2)]


class TestReshare:
    def test_reshare_roundtrip(self):
        scheme = ShamirScheme(5, 3)
        rng = random.Random(1)
        sub = reshare(scheme, 4242, rng)
        assert scheme.reconstruct(sub) == 4242


class TestShareTree:
    def test_deal_depth_and_leaf_count(self):
        tree = ShareTree.deal(100, small_schemes(), random.Random(2))
        assert tree.depth == 2
        assert len(tree.leaves) == 4 * 3
        assert all(len(path) == 2 for path in tree.leaves)

    def test_empty_schemes_rejected(self):
        with pytest.raises(SecretSharingError):
            ShareTree.deal(1, [], random.Random(0))

    def test_full_reconstruction(self):
        tree = ShareTree.deal(2024, small_schemes(), random.Random(3))
        assert tree.reconstruct() == 2024

    def test_partial_reconstruction_succeeds_with_enough_leaves(self):
        tree = ShareTree.deal(55, small_schemes(), random.Random(4))
        # Keep 2-of-3 leaves under 3-of-4 level-1 shares: still recoverable.
        known = {}
        for path, value in tree.leaves.items():
            if path[0] <= 3 and path[1] <= 2:
                known[path] = value
        assert tree.reconstruct_from(known) == 55

    def test_partial_reconstruction_fails_below_threshold(self):
        tree = ShareTree.deal(55, small_schemes(), random.Random(4))
        # Only 1 leaf under each level-1 share: nothing recoverable.
        known = {
            path: value for path, value in tree.leaves.items() if path[1] == 1
        }
        with pytest.raises(SecretSharingError):
            tree.reconstruct_from(known)

    def test_reconstruct_from_wrong_level_path_raises(self):
        tree = ShareTree.deal(55, small_schemes(), random.Random(4))
        with pytest.raises(SecretSharingError):
            tree.reconstruct_from({(1,): 7})

    def test_recoverable_matches_reconstruction(self):
        tree = ShareTree.deal(99, small_schemes(), random.Random(5))
        rng = random.Random(6)
        paths = tree.leaf_paths()
        for trial in range(30):
            k = rng.randrange(len(paths) + 1)
            coalition = rng.sample(paths, k)
            known = {p: tree.leaves[p] for p in coalition}
            if tree.recoverable(coalition):
                assert tree.reconstruct_from(known) == 99
            else:
                with pytest.raises(SecretSharingError):
                    tree.reconstruct_from(known)


class TestLemma1Secrecy:
    """Lemma 1: holding <= t_i shares of each i-share reveals nothing.

    We verify the exact combinatorial consequence: the coalition cannot
    determine the secret (recoverable() is False), and — statistically —
    the values it holds are identically distributed regardless of secret.
    """

    def test_below_threshold_everywhere_not_recoverable(self):
        schemes = [ShamirScheme(4, 3), ShamirScheme(4, 3)]
        # Hold 2 (= t) sub-shares of every 1-share: 4 * 2 = 8 leaves.
        coalition = [
            (top, sub) for top in range(1, 5) for sub in range(1, 3)
        ]
        assert not recoverable(schemes, coalition)

    def test_threshold_at_one_node_still_insufficient(self):
        schemes = [ShamirScheme(4, 3), ShamirScheme(4, 3)]
        # Fully recover one 1-share; that is 1 < 3 level-1 shares.
        coalition = [(1, sub) for sub in range(1, 5)]
        assert not recoverable(schemes, coalition)

    def test_exact_threshold_recovers(self):
        schemes = [ShamirScheme(4, 3), ShamirScheme(4, 3)]
        coalition = [
            (top, sub) for top in range(1, 4) for sub in range(1, 4)
        ]
        assert recoverable(schemes, coalition)

    def test_distribution_independent_of_secret(self):
        """Two shares of a threshold-3 dealing look alike for any secret."""
        schemes = [ShamirScheme(3, 3)]
        observed = {0: set(), 1: set()}
        for secret in (0, 1):
            for seed in range(200):
                tree = ShareTree.deal(
                    secret, schemes, random.Random(seed + 1000 * secret)
                )
                observed[secret].add(tree.leaves[(1,)] % 64)
        # Both secrets produce wide, overlapping share-value distributions.
        assert len(observed[0] & observed[1]) > 32


@given(
    secret=st.integers(min_value=0, max_value=10**9),
    seed=st.integers(min_value=0, max_value=2**32),
    depth=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_iterated_roundtrip_property(secret, seed, depth):
    schemes = [ShamirScheme(3, 2) for _ in range(depth)]
    tree = ShareTree.deal(secret, schemes, random.Random(seed))
    assert tree.reconstruct() == secret
