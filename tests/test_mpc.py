"""Tests for the secure multi-party computation layer (linear + Beaver)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import SecretSharingError, ShamirScheme
from repro.mpc import (
    BeaverTriple,
    LinearMPCError,
    coalition_learns_nothing_beyond_output,
    generate_triple,
    secure_inner_product,
    secure_mean,
    secure_multiply,
    secure_sum,
    secure_weighted_sum,
)


# -- linear layer ----------------------------------------------------------------------


def test_secure_sum_matches_plain_sum():
    inputs = [3, 14, 15, 92, 65]
    transcript = secure_sum(inputs, committee_size=7)
    assert transcript.result == sum(inputs)


def test_secure_weighted_sum():
    inputs = [10, 20, 30]
    weights = [1, 2, 3]
    transcript = secure_weighted_sum(inputs, weights, committee_size=5)
    assert transcript.result == 10 + 40 + 90


def test_secure_mean():
    inputs = [4, 8, 12, 16]
    mean, transcript = secure_mean(inputs, committee_size=5)
    assert mean == 10.0
    assert transcript.result == 40


def test_cost_accounting():
    inputs = [1, 2, 3, 4]
    k = 9
    transcript = secure_sum(inputs, committee_size=k)
    assert transcript.dealt_shares == 4 * k
    assert transcript.revealed_shares == k
    assert transcript.committee_size == k
    assert transcript.bits_per_input_owner == k * 31
    assert transcript.bits_per_committee_member == 31


def test_only_result_row_published():
    inputs = [7, 11]
    transcript = secure_sum(inputs, committee_size=5, seed=3)
    # The published row reconstructs the sum and nothing else is revealed.
    scheme = ShamirScheme(n_players=5, threshold=3)
    assert (
        scheme.reconstruct(transcript.member_result_shares[:3])
        == sum(inputs)
    )


def test_input_validation():
    with pytest.raises(LinearMPCError):
        secure_sum([], committee_size=5)
    with pytest.raises(LinearMPCError):
        secure_weighted_sum([1, 2], [1], committee_size=5)
    with pytest.raises(LinearMPCError):
        secure_sum([1], committee_size=1)
    with pytest.raises(LinearMPCError):
        secure_sum(
            [1], committee_size=5,
            scheme=ShamirScheme(n_players=4, threshold=3),
        )


def test_subthreshold_coalition_learns_nothing():
    inputs = [100, 200, 300]
    k = 9  # threshold 5
    assert coalition_learns_nothing_beyond_output(
        inputs, k, coalition=[0, 1, 2, 3], seed=7
    )


def test_threshold_coalition_breaks_secrecy():
    inputs = [100, 200, 300]
    k = 9  # threshold 5: a 5-member coalition reconstructs everything
    assert not coalition_learns_nothing_beyond_output(
        inputs, k, coalition=[0, 1, 2, 3, 4], seed=7
    )


@settings(max_examples=30, deadline=None)
@given(
    inputs=st.lists(
        st.integers(min_value=0, max_value=10**6), min_size=1, max_size=8
    ),
    weights=st.lists(
        st.integers(min_value=0, max_value=100), min_size=8, max_size=8
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_weighted_sum_correct(inputs, weights, seed):
    weights = weights[: len(inputs)]
    expected = sum(w * x for w, x in zip(weights, inputs))
    transcript = secure_weighted_sum(
        inputs, weights, committee_size=7, seed=seed
    )
    assert transcript.result == expected % (2**31 - 1)


# -- Beaver multiplication ---------------------------------------------------------------


def committee(k=7):
    return ShamirScheme(n_players=k, threshold=k // 2 + 1)


def test_triple_is_consistent():
    scheme = committee()
    rng = random.Random(1)
    triple = generate_triple(scheme, rng)
    a = scheme.reconstruct(list(triple.a)[: scheme.threshold])
    b = scheme.reconstruct(list(triple.b)[: scheme.threshold])
    c = scheme.reconstruct(list(triple.c)[: scheme.threshold])
    assert c == scheme.field.mul(a, b)


def test_secure_multiply_correct():
    scheme = committee()
    rng = random.Random(2)
    x, y = 123, 456
    x_shares = scheme.deal(x, rng)
    y_shares = scheme.deal(y, rng)
    triple = generate_triple(scheme, rng)
    z_shares = secure_multiply(x_shares, y_shares, triple, scheme)
    z = scheme.reconstruct(z_shares[: scheme.threshold])
    assert z == x * y


def test_secure_multiply_large_values_wrap_in_field():
    scheme = committee()
    rng = random.Random(3)
    p = scheme.field.modulus
    x, y = p - 2, p - 3
    x_shares = scheme.deal(x, rng)
    y_shares = scheme.deal(y, rng)
    triple = generate_triple(scheme, rng)
    z = scheme.reconstruct(
        secure_multiply(x_shares, y_shares, triple, scheme)[
            : scheme.threshold
        ]
    )
    assert z == (x * y) % p


def test_misaligned_shares_rejected():
    scheme = committee()
    rng = random.Random(4)
    x_shares = scheme.deal(5, rng)
    y_shares = scheme.deal(6, rng)
    triple = generate_triple(scheme, rng)
    bad = list(reversed(x_shares))
    with pytest.raises(SecretSharingError):
        secure_multiply(bad, y_shares, triple, scheme)


def test_triple_alignment_validated():
    scheme = committee()
    rng = random.Random(5)
    t = generate_triple(scheme, rng)
    with pytest.raises(SecretSharingError):
        BeaverTriple(a=t.a, b=tuple(reversed(t.b)), c=t.c)


def test_secure_inner_product():
    scheme = committee(9)
    rng = random.Random(6)
    xs_plain = [2, 3, 5]
    ys_plain = [7, 11, 13]
    xs = [scheme.deal(v, rng) for v in xs_plain]
    ys = [scheme.deal(v, rng) for v in ys_plain]
    triples = [generate_triple(scheme, rng) for _ in xs_plain]
    z_shares = secure_inner_product(xs, ys, triples, scheme)
    z = scheme.reconstruct(z_shares[: scheme.threshold])
    assert z == 2 * 7 + 3 * 11 + 5 * 13


def test_inner_product_validation():
    scheme = committee()
    rng = random.Random(7)
    xs = [scheme.deal(1, rng)]
    ys = [scheme.deal(2, rng), scheme.deal(3, rng)]
    with pytest.raises(SecretSharingError):
        secure_inner_product(xs, ys, [], scheme)
    with pytest.raises(SecretSharingError):
        secure_inner_product(xs, ys[:1], [], scheme)


@settings(max_examples=25, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=2**31 - 2),
    y=st.integers(min_value=0, max_value=2**31 - 2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_beaver_multiplication(x, y, seed):
    scheme = committee()
    rng = random.Random(seed)
    x_shares = scheme.deal(x, rng)
    y_shares = scheme.deal(y, rng)
    triple = generate_triple(scheme, rng)
    z = scheme.reconstruct(
        secure_multiply(x_shares, y_shares, triple, scheme)[
            : scheme.threshold
        ]
    )
    assert z == (x * y) % scheme.field.modulus
