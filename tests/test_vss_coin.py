"""Tests for the VSS-based committee shared coin (the E19 ablation)."""

import random
from collections import Counter

import pytest

from repro.core.vss_coin import (
    CoinCostModel,
    VSSCoinMember,
    run_vss_coin,
    vss_coin_fault_bound,
)
from repro.net.messages import Message
from repro.net.simulator import Adversary, NullAdversary


def test_fault_bound():
    assert vss_coin_fault_bound(4) == 1
    assert vss_coin_fault_bound(7) == 2
    assert vss_coin_fault_bound(10) == 3


def test_fault_free_members_agree_on_coin():
    result = run_vss_coin(k=7, seed=1)
    coins = set(result.good_outputs().values())
    assert len(coins) == 1
    assert coins.pop() in (0, 1)


def test_all_dealers_qualified_fault_free():
    k = 7
    members = [VSSCoinMember(pid, k, seed=2) for pid in range(k)]
    from repro.net.simulator import SyncNetwork

    SyncNetwork(members, NullAdversary(k)).run(max_rounds=5)
    for member in members:
        assert member.qualified == list(range(k))


def test_bulk_predeal_is_bit_identical_to_lazy_dealing():
    """Wave-bulk dealing (the batch backend's prepare hook) must be a
    pure accelerant: members pre-dealt via ``bulk_predeal`` run the
    protocol to exactly the transcript lazily-dealing members produce."""
    from repro.core.vss_coin import bulk_predeal
    from repro.net.simulator import SyncNetwork

    k = 7
    lazy = [VSSCoinMember(pid, k, seed=9) for pid in range(k)]
    eager = [VSSCoinMember(pid, k, seed=9) for pid in range(k)]
    bulk_predeal(eager)
    assert all(m._predealt is not None for m in eager)
    bulk_predeal(eager)  # idempotent: already-dealt members untouched
    SyncNetwork(lazy, NullAdversary(k)).run(max_rounds=6)
    SyncNetwork(eager, NullAdversary(k)).run(max_rounds=6)
    assert [m.output() for m in eager] == [m.output() for m in lazy]
    assert [m.qualified for m in eager] == [m.qualified for m in lazy]


def test_coin_roughly_uniform_across_seeds():
    tally = Counter()
    for seed in range(24):
        result = run_vss_coin(k=4, seed=seed)
        tally[result.agreement_value()] += 1
    assert tally[0] >= 4
    assert tally[1] >= 4


class SilentMembers(Adversary):
    """t members crash from the start — deal nothing, echo nothing."""

    def __init__(self, k, t):
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no):
        return set(range(self.budget)) if round_no == 1 else set()

    def act(self, view):
        return []


def test_crashed_members_are_disqualified_and_coin_agrees():
    k = 7
    t = vss_coin_fault_bound(k)
    members = [VSSCoinMember(pid, k, seed=3) for pid in range(k)]
    from repro.net.simulator import SyncNetwork

    adversary = SilentMembers(k, t)
    SyncNetwork(members, adversary).run(max_rounds=5)
    good = [m for m in members if m.pid not in adversary.corrupted]
    coins = {m.output() for m in good}
    assert len(coins) == 1
    assert coins.pop() in (0, 1)
    for m in good:
        # Crashed dealers never delivered rows: disqualified everywhere.
        assert all(dealer not in m.qualified for dealer in range(t))
        # Good dealers always qualify.
        assert all(dealer in m.qualified for dealer in range(t, k))


class InconsistentDealer(Adversary):
    """One corrupted dealer sends rows from two different polynomials."""

    def __init__(self, k, seed=0):
        super().__init__(k, budget=1)
        self.k = k
        self.seed = seed
        self._dealt = False

    def select_corruptions(self, round_no):
        return {0} if round_no == 1 else set()

    def act(self, view):
        if self._dealt:
            return []
        self._dealt = True
        from repro.crypto.bivariate import BivariateScheme

        t = vss_coin_fault_bound(self.k)
        scheme = BivariateScheme(n_players=self.k, threshold=t + 1)
        rng = random.Random(self.seed)
        rows_a = scheme.deal(111, rng)
        rows_b = scheme.deal(222, rng)
        out = []
        for member in range(1, self.k):
            rows = rows_a if member % 2 else rows_b
            out.append(
                Message(0, member, "row", (0, rows[member].values))
            )
        return out


def test_inconsistent_dealer_disqualified_by_echo():
    k = 7
    members = [VSSCoinMember(pid, k, seed=4) for pid in range(k)]
    from repro.net.simulator import SyncNetwork

    adversary = InconsistentDealer(k, seed=4)
    SyncNetwork(members, adversary).run(max_rounds=5)
    good = [m for m in members if m.pid != 0]
    # The two-faced dealing fails cross-checks at good member pairs on
    # opposite polynomials: more than t complaints, disqualified.
    for m in good:
        assert 0 not in m.qualified
    coins = {m.output() for m in good}
    assert len(coins) == 1


class RevealWithholder(Adversary):
    """t members participate honestly until the reveal, then go silent.

    Tests the no-abort property: reconstruction needs only t+1 of the
    n-t good shares, so withholding cannot block or bias the coin.
    """

    def __init__(self, k, t):
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no):
        # Corrupt at the start of the reveal round (round 4).
        return set(range(self.budget)) if round_no == 4 else set()

    def act(self, view):
        return []


def test_reveal_withholding_cannot_abort():
    k = 7
    t = vss_coin_fault_bound(k)
    members = [VSSCoinMember(pid, k, seed=5) for pid in range(k)]
    from repro.net.simulator import SyncNetwork

    adversary = RevealWithholder(k, t)
    SyncNetwork(members, adversary).run(max_rounds=5)
    good = [m for m in members if m.pid not in adversary.corrupted]
    coins = {m.output() for m in good}
    assert len(coins) == 1
    assert coins.pop() in (0, 1)


def test_late_corruption_cannot_flip_committed_secrets():
    """Corrupting a dealer after round 1 leaves its dealt secret fixed:
    both runs (with and without round-4 corruption of dealer 6) observe
    the same qualified dealings from the good members' rows."""
    k = 7

    def run(withhold):
        members = [VSSCoinMember(pid, k, seed=6) for pid in range(k)]
        from repro.net.simulator import SyncNetwork

        adversary = (
            RevealWithholder(k, 1) if withhold else NullAdversary(k)
        )
        SyncNetwork(members, adversary).run(max_rounds=5)
        reference = [m for m in members if m.pid == k - 1][0]
        return reference.output()

    assert run(withhold=False) == run(withhold=True)


def test_cost_model():
    model = CoinCostModel(k=10)
    per_coin = model.vss_bits_per_member()
    assert per_coin > 10 * 10 * 31  # the k^2 echo floor
    amortized = model.paper_amortized_bits_per_member(coins_served=100)
    assert amortized < per_coin
    with pytest.raises(ValueError):
        model.paper_amortized_bits_per_member(0)


def test_coin_uniform_at_k7_regression():
    """Regression: structured integer seeds ((seed << 20) | pid) produced
    correlated Mersenne Twister streams and a visibly biased coin at
    k = 7 (11 zeros in the first 12 seeds).  String seeding fixed it."""
    tally = Counter()
    for seed in range(24):
        result = run_vss_coin(k=7, seed=seed)
        tally[result.agreement_value()] += 1
    assert tally[0] >= 6
    assert tally[1] >= 6
