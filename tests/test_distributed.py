"""Tests for the multi-host distributed backend and its socket plumbing.

Everything here runs against real TCP sockets on loopback —
:class:`WorkerServer` instances serving from daemon threads are
byte-for-byte the same code path ``repro worker serve`` runs in a
separate process (the CI job exercises that spawn path).  Pinned:

* **parity** — distributed == hybrid == process == serial, for sync
  (chunk-mode) and async (wave-mode) scenarios, at several unit sizes;
* **worker death mid-sweep** — a worker that answers some units and
  then drops connections (indistinguishable from a killed process) is
  excluded and its units retried on the survivor; results stay
  bit-identical; a dead address (nothing listening) is rebalanced the
  same way; when *every* worker is dead the sweep raises instead of
  returning partial results;
* **lifecycle** — idempotent close, context-manager use, reuse after
  close (lazy reconnect).
"""

import socket

import pytest

from repro.engine import (
    AsyncBackend,
    DispatchError,
    DistributedBackend,
    Engine,
    EngineError,
    ExperimentSpec,
    HybridBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketTransport,
    WorkerServer,
    get_backend,
    parse_hosts,
)
from repro.engine.engine import BACKEND_NAMES


def _async_spec(trials=6, seed=3):
    return ExperimentSpec(
        runner="bracha-broadcast", n=5, trials=trials, seed=seed
    )


def _sync_spec(trials=5, seed=11):
    return ExperimentSpec(runner="vss-coin", n=7, trials=trials, seed=seed)


def _dead_port():
    """A port that was bound and released: nothing listens there."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture()
def workers():
    servers = [WorkerServer().start(), WorkerServer().start()]
    yield servers
    for server in servers:
        server.close()


# -- host parsing ----------------------------------------------------------------------


def test_parse_hosts():
    assert parse_hosts(["10.0.0.1:7045", ("h", 9)]) == [
        ("10.0.0.1", 7045, 1),
        ("h", 9, 1),
    ]
    assert parse_hosts(["bare-host"]) == [("bare-host", 7045, 1)]
    # The host:port:weight form feeds the capacity-weighted plan.
    assert parse_hosts(["big:7045:3", ("h2", 9, 2)]) == [
        ("big", 7045, 3),
        ("h2", 9, 2),
    ]
    with pytest.raises(EngineError, match="host"):
        DistributedBackend([])


def test_parse_hosts_errors_name_the_offending_entry():
    """Every malformed spec is rejected with a message carrying the
    entry itself, so a bad element of a long --hosts list is findable."""
    cases = [
        ("host:notaport", "not an integer"),
        (" ", "empty"),
        ("a:1:2:3", "host:port:weight"),
        ("host::7045", "host:port:weight"),
        ("h:7045:zero", "not an integer"),
        ("h:7045:0", "weight 0 must be >= 1"),
        ("h:99999", "outside 1..65535"),
        (("h", "x"), "port and weight must be integers"),
        (("h", 1, 2, 3), "(host, port)"),
    ]
    for entry, why in cases:
        with pytest.raises(EngineError) as err:
            parse_hosts([entry])
        message = str(err.value)
        assert repr(entry) in message, entry
        assert "bad worker host" in message
        assert why in message, entry


def test_capacity_weight_expands_into_lanes():
    """A weight-w host is w independent lanes on the transport and w
    effective workers in the plan geometry."""
    transport = SocketTransport([("a", 7045, 3), "b:7045:2", ("c", 7045)])
    assert transport.lanes() == (
        "a:7045", "a:7045#1", "a:7045#2", "b:7045", "b:7045#1", "c:7045"
    )
    transport.close()
    backend = DistributedBackend(["a:7045:3", "b:7045"])
    assert backend.total_lanes == 4
    assert (
        backend.plan(_sync_spec(trials=64)).unit_size
        == DistributedBackend(
            ["a:7045", "b:7045", "c:7045", "d:7045"]
        ).plan(_sync_spec(trials=64)).unit_size
    )
    backend.close()


def test_weighted_host_keeps_multiple_units_in_flight_bit_identically():
    """One weight-2 worker serves two concurrent lanes (the threaded
    server really does execute them in parallel) and the merged sweep
    stays bit-identical to serial."""
    spec = _sync_spec(trials=6)
    serial = SerialBackend().run_trials(spec)
    server = WorkerServer().start()
    try:
        with DistributedBackend(
            [f"{server.address}:2"], unit_size=1
        ) as dist:
            assert dist.total_lanes == 2
            assert dist.run_trials(spec) == serial
        report = dist.telemetry.report(results=serial)
        lanes = {lane.lane for lane in report.lanes if lane.units_ok}
        assert lanes == {server.address, f"{server.address}#1"}
    finally:
        server.close()


# -- parity: the acceptance criterion --------------------------------------------------


def test_distributed_equals_hybrid_equals_process_equals_serial(workers):
    """The headline chain, both scenario families, all through the
    shared dispatch core."""
    hosts = [w.address for w in workers]

    async_spec = _async_spec(trials=8, seed=17)
    serial = SerialBackend().run_trials(async_spec)
    process = ProcessPoolBackend(workers=2, chunk_size=3).run_trials(
        async_spec
    )
    hybrid = HybridBackend(workers=2, wave_size=3).run_trials(async_spec)
    with DistributedBackend(hosts, unit_size=3) as dist:
        distributed = dist.run_trials(async_spec)
    assert distributed == hybrid == process == serial

    sync_spec = _sync_spec(trials=5)
    serial_sync = SerialBackend().run_trials(sync_spec)
    process_sync = ProcessPoolBackend(workers=2, chunk_size=2).run_trials(
        sync_spec
    )
    with DistributedBackend(hosts, unit_size=2) as dist:
        distributed_sync = dist.run_trials(sync_spec)
    assert distributed_sync == process_sync == serial_sync


def test_unit_size_is_unobservable(workers):
    hosts = [w.address for w in workers]
    spec = _async_spec(trials=7, seed=5)
    serial = SerialBackend().run_trials(spec)
    for unit_size in (1, 2, 5, 100, None):
        with DistributedBackend(hosts, unit_size=unit_size) as dist:
            assert dist.run_trials(spec) == serial, f"unit_size={unit_size}"


def test_distributed_through_engine_and_get_backend(workers):
    hosts = [w.address for w in workers]
    assert "distributed" in BACKEND_NAMES
    backend = get_backend("distributed", wave_size=2, hosts=hosts)
    assert isinstance(backend, DistributedBackend)
    assert backend.unit_size == 2
    spec = _async_spec(trials=4)
    with Engine(backend) as engine:
        result = engine.run(spec)
    assert result.backend == "distributed"
    assert list(result.trials) == SerialBackend().run_trials(spec)


def test_get_backend_distributed_requires_hosts():
    with pytest.raises(EngineError, match="hosts"):
        get_backend("distributed")


def test_distributed_contains_trial_crashes_like_serial(workers):
    """Protocol crashes are trial-level failures, not lane failures:
    the sweep completes with the same failed TrialResult rows serial
    produces.  (Built-in scenario, so remote registries resolve it.)"""
    hosts = [w.address for w in workers]
    # dealer=9 passes value-level validation without n and fails inside
    # the builder at runtime — on the worker, not in the client.
    spec = ExperimentSpec(
        runner="bracha-broadcast", n=5, trials=3, seed=2,
        params={"dealer": 9},
    )
    serial = SerialBackend().run_trials(spec)
    assert all(not t.ok for t in serial)
    with DistributedBackend(hosts, unit_size=1) as dist:
        assert dist.run_trials(spec) == serial


# -- worker death, retry, rebalance ----------------------------------------------------


def test_worker_killed_mid_sweep_is_retried_on_survivor():
    """The acceptance criterion's kill test: a worker that dies after
    answering one unit loses its in-flight unit; the dispatch plane
    excludes the dead lane, reruns the unit on the survivor, and the
    sweep stays bit-identical to serial."""
    spec = _async_spec(trials=6, seed=9)
    serial = SerialBackend().run_trials(spec)
    crashing = WorkerServer(crash_after_units=1).start()
    healthy = WorkerServer().start()
    try:
        with DistributedBackend(
            [crashing.address, healthy.address], unit_size=1
        ) as dist:
            assert dist.run_trials(spec) == serial
        assert crashing.crashed  # the kill actually happened mid-sweep
    finally:
        crashing.close()
        healthy.close()


def test_restarted_worker_rejoins_on_the_next_run():
    """A lane lost in one sweep is re-dialed on the next run_trials:
    a worker that restarted between sweeps rejoins instead of the
    backend running degraded forever on its surviving hosts."""
    spec = _sync_spec(trials=4)
    serial = SerialBackend().run_trials(spec)
    port = _dead_port()
    healthy = WorkerServer().start()
    backend = DistributedBackend(
        [f"127.0.0.1:{port}", healthy.address],
        unit_size=1,
        connect_timeout=1.0,
    )
    try:
        assert backend.run_trials(spec) == serial  # degraded: one lane
        assert len(backend._transport.lanes()) == 1
        revived = WorkerServer(port=port).start()  # the worker returns
        try:
            assert backend.run_trials(spec) == serial
            assert len(backend._transport.lanes()) == 2  # both rejoined
        finally:
            revived.close()
    finally:
        healthy.close()
        backend.close()


def test_worker_dead_from_the_start_is_rebalanced():
    spec = _sync_spec(trials=4)
    serial = SerialBackend().run_trials(spec)
    healthy = WorkerServer().start()
    try:
        with DistributedBackend(
            [f"127.0.0.1:{_dead_port()}", healthy.address],
            unit_size=1,
            connect_timeout=1.0,
        ) as dist:
            assert dist.run_trials(spec) == serial
    finally:
        healthy.close()


def test_all_workers_dead_raises_instead_of_partial_results():
    spec = _sync_spec(trials=4)
    backend = DistributedBackend(
        [f"127.0.0.1:{_dead_port()}", f"127.0.0.1:{_dead_port()}"],
        unit_size=1,
        connect_timeout=0.5,
    )
    with pytest.raises(DispatchError):
        backend.run_trials(spec)
    backend.close()


def test_socket_transport_lane_death_is_visible():
    transport = SocketTransport(
        [f"127.0.0.1:{_dead_port()}"], connect_timeout=0.5
    )
    from repro.engine import WorkUnit

    assert transport.lanes()  # optimistic until proven dead
    assert transport.try_submit(
        0, WorkUnit(spec=_sync_spec(trials=1), indices=(0,))
    )
    envelope = transport.collect()
    assert not envelope.ok
    assert transport.lanes() == ()  # the refused connect killed the lane
    transport.close()
    transport.close()  # idempotent


# -- lifecycle -------------------------------------------------------------------------


def test_distributed_backend_reusable_after_close(workers):
    hosts = [w.address for w in workers]
    spec = _async_spec(trials=4)
    backend = DistributedBackend(hosts, unit_size=2)
    first = backend.run_trials(spec)
    backend.close()
    backend.close()  # idempotent
    assert backend.run_trials(spec) == first  # lazy reconnect
    backend.close()


def test_distributed_constructor_validation(workers):
    hosts = [w.address for w in workers]
    with pytest.raises(EngineError, match="unit_size"):
        DistributedBackend(hosts, unit_size=0)
    with pytest.raises(EngineError, match="max_live"):
        DistributedBackend(hosts, max_live=0)


def test_unknown_scenario_fails_fast_in_the_client(workers):
    backend = DistributedBackend([w.address for w in workers])
    with pytest.raises(EngineError, match="unknown experiment runner"):
        backend.run_trials(
            ExperimentSpec(runner="no-such-scenario", n=3, trials=1)
        )
    backend.close()


def test_worker_server_close_is_idempotent():
    server = WorkerServer().start()
    server.close()
    server.close()
    unstarted = WorkerServer()
    unstarted.close()  # never served: still safe


def test_close_drains_inflight_unit_before_teardown():
    """The graceful-drain regression: a close() racing an executing
    unit blocks until that unit's response is flushed — the client
    still collects a success envelope, never a cut connection."""
    import threading
    import time

    from repro.engine import ExperimentRunner, TrialResult, WorkUnit, register
    from repro.engine.dispatch import MODE_TRIALS

    started = threading.Event()

    def _slow_trial(ctx):
        started.set()
        time.sleep(0.5)
        return TrialResult.make(ctx, {"value": 1.0})

    register(
        ExperimentRunner(
            name="test-slow-drain",
            run_trial=_slow_trial,
            description="test-only: sleeps long enough to race close()",
        )
    )
    spec = ExperimentSpec(runner="test-slow-drain", n=1, trials=1)
    server = WorkerServer().start()
    transport = SocketTransport([server.address])
    try:
        assert transport.try_submit(
            0, WorkUnit(spec=spec, indices=(0,), mode=MODE_TRIALS)
        )
        assert started.wait(5.0)  # the unit is executing on the server
        begin = time.monotonic()
        server.close()  # must drain: finish the unit, flush the reply
        drained_after = time.monotonic() - begin
        envelope = transport.collect()
        assert envelope.ok, envelope.error
        assert [r.trial_index for r in envelope.results] == [0]
        assert drained_after >= 0.2  # close really waited for the unit
        assert server.units_served == 1
    finally:
        transport.close()
        server.close()


def test_draining_server_refuses_new_units_with_an_error_envelope():
    """A unit offered to a draining server is answered (an error
    envelope, so the client can rebalance it) rather than ignored."""
    from repro.engine import WorkUnit

    server = WorkerServer()
    server.draining = True  # drain mode without tearing sockets down
    server.start()
    transport = SocketTransport([server.address])
    try:
        assert transport.try_submit(
            0, WorkUnit(spec=_sync_spec(trials=1), indices=(0,))
        )
        envelope = transport.collect()
        assert not envelope.ok
        assert "draining" in envelope.error
    finally:
        transport.close()
        server.close()


def test_async_wave_mode_matches_in_process_async(workers):
    """Distributed wave units reproduce the async backend exactly —
    the same run_wave driver runs on the remote side."""
    hosts = [w.address for w in workers]
    spec = _async_spec(trials=6, seed=21)
    stepped = AsyncBackend(max_live=4).run_trials(spec)
    with DistributedBackend(hosts, unit_size=2, max_live=4) as dist:
        assert dist.run_trials(spec) == stepped


# -- pipelined lanes and the wire codec ------------------------------------------------


def test_lane_depth_is_unobservable():
    """Pipeline depth changes overlap, never content: every depth
    merges bit-identically to serial, for both scenario families."""
    server = WorkerServer().start()
    try:
        for spec in (_sync_spec(trials=6), _async_spec(trials=6)):
            serial = SerialBackend().run_trials(spec)
            for depth in (1, 2, 4):
                with DistributedBackend(
                    [server.address], unit_size=1, lane_depth=depth
                ) as dist:
                    assert dist.run_trials(spec) == serial, f"depth={depth}"
    finally:
        server.close()


def test_pipelined_lane_fills_its_window_and_reports_it():
    """A depth-4 lane really holds several units in flight (telemetry's
    inflight_peak) and never exceeds its window; the negotiated codec
    and per-lane frame count land in the lane report."""
    spec = _sync_spec(trials=6)
    serial = SerialBackend().run_trials(spec)
    server = WorkerServer().start()
    try:
        with DistributedBackend(
            [server.address], unit_size=1, lane_depth=4
        ) as dist:
            results = dist.run_trials(spec)
        assert results == serial
        report = dist.telemetry.report(results)
        (lane,) = report.lanes
        assert lane.codec == "binary"  # negotiation upgraded the lane
        assert 2 <= lane.inflight_peak <= 4
        # One reply frame per unit plus the hello-ok negotiation reply.
        assert lane.frames == spec.trials + 1
        assert lane.bytes_in > 0 and lane.bytes_out > 0
    finally:
        server.close()


def test_forced_json_codec_stays_bit_identical():
    """codec="json" (the legacy client, no negotiation) still merges
    identically, even pipelined."""
    spec = _sync_spec(trials=5)
    serial = SerialBackend().run_trials(spec)
    server = WorkerServer().start()
    try:
        with DistributedBackend(
            [server.address], unit_size=1, lane_depth=3, codec="json"
        ) as dist:
            assert dist.run_trials(spec) == serial
        report = dist.telemetry.report(serial)
        (lane,) = report.lanes
        assert lane.codec == "json"
    finally:
        server.close()


def test_mixed_fleet_with_legacy_json_worker_is_bit_identical():
    """The interop acceptance: one binary-capable worker and one
    pre-codec worker (binary=False, stats=False — the legacy server
    shape) serve one sweep; the merged results match serial bit for
    bit and the lane reports show which codec each lane negotiated."""
    spec = _sync_spec(trials=8)
    serial = SerialBackend().run_trials(spec)
    modern = WorkerServer().start()
    legacy = WorkerServer(binary=False, stats=False).start()
    try:
        with DistributedBackend(
            [modern.address, legacy.address], unit_size=1, lane_depth=3
        ) as dist:
            results = dist.run_trials(spec)
        assert results == serial
        report = dist.telemetry.report(results)
        codecs = {lane.lane: lane.codec for lane in report.lanes}
        assert codecs[modern.address] == "binary"
        assert codecs[legacy.address] == "json"
        assert all(lane.units_ok for lane in report.lanes)
    finally:
        modern.close()
        legacy.close()


def test_worker_killed_mid_pipelined_sweep_rebalances_every_inflight_unit():
    """With several units riding the dead lane, every one of them is
    retried on the survivor — not just the unit at the head."""
    spec = _async_spec(trials=8, seed=13)
    serial = SerialBackend().run_trials(spec)
    crashing = WorkerServer(crash_after_units=2).start()
    healthy = WorkerServer().start()
    try:
        with DistributedBackend(
            [crashing.address, healthy.address], unit_size=1, lane_depth=4
        ) as dist:
            assert dist.run_trials(spec) == serial
        assert crashing.crashed
    finally:
        crashing.close()
        healthy.close()


def test_oversized_reply_fails_the_lane_with_a_named_error():
    """The reply-frame cap: a reply larger than max_frame_bytes kills
    the lane cleanly — the sweep's error names the lane and the cap
    instead of the client growing its buffer without bound."""
    spec = _sync_spec(trials=2)
    server = WorkerServer().start()
    backend = DistributedBackend(
        [server.address], unit_size=1, max_frame_bytes=256
    )
    try:
        with pytest.raises(DispatchError) as err:
            backend.run_trials(spec)
        message = str(err.value)
        assert server.address in message  # names the lane
        assert "frame cap" in message  # names the bound
    finally:
        backend.close()
        server.close()


def test_worker_refuses_oversized_request_frame():
    """The server-side cap mirrors the client's: an oversized request
    is answered with an error naming the cap, then the worker hangs up
    (framing cannot be resynchronised mid-stream)."""
    import json as json_module

    server = WorkerServer(max_frame_bytes=512).start()
    try:
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as sock:
            sock.sendall(b'{"pad":"' + b"x" * 2048 + b'"}\n')
            reply = json_module.loads(sock.makefile().readline())
        assert reply["kind"] == "error"
        assert "frame cap" in reply["error"]
    finally:
        server.close()


def test_lane_depth_validation():
    server = WorkerServer().start()
    try:
        with pytest.raises(EngineError, match="lane_depth"):
            DistributedBackend([server.address], lane_depth=0)
        with pytest.raises(EngineError, match="lane_depth"):
            SocketTransport([server.address], lane_depth=0)
        with pytest.raises(EngineError, match="codec"):
            SocketTransport([server.address], codec="msgpack")
    finally:
        server.close()
