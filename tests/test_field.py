"""Unit tests for prime-field arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import (
    DEFAULT_FIELD,
    MERSENNE_31,
    MERSENNE_61,
    FieldError,
    PrimeField,
    is_probable_prime,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 101, 257):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 100, 255, 561):  # 561 is a Carmichael number
            assert not is_probable_prime(c)

    def test_mersenne_61(self):
        assert is_probable_prime(MERSENNE_61)

    def test_mersenne_31(self):
        assert is_probable_prime(MERSENNE_31)


class TestFieldConstruction:
    def test_default_modulus(self):
        assert DEFAULT_FIELD.modulus == MERSENNE_31

    def test_rejects_composite(self):
        with pytest.raises(FieldError):
            PrimeField(15)

    def test_rejects_tiny(self):
        with pytest.raises(FieldError):
            PrimeField(1)

    def test_element_bits(self):
        assert PrimeField(257).element_bits == 9
        assert DEFAULT_FIELD.element_bits == 31
        assert PrimeField(MERSENNE_61).element_bits == 61


class TestArithmetic:
    field = PrimeField(257)

    def test_add_wraps(self):
        assert self.field.add(200, 100) == 43

    def test_sub_wraps(self):
        assert self.field.sub(3, 5) == 255

    def test_mul(self):
        assert self.field.mul(16, 16) == 256

    def test_neg(self):
        assert self.field.add(self.field.neg(42), 42) == 0

    def test_inverse_roundtrip(self):
        for a in range(1, 257):
            assert self.field.mul(a, self.field.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(FieldError):
            self.field.inv(0)

    def test_div(self):
        assert self.field.mul(self.field.div(10, 7), 7) == 10

    def test_pow_fermat(self):
        for a in (1, 5, 100, 256):
            assert self.field.pow(a, 256) == 1

    def test_sum(self):
        assert self.field.sum([100, 100, 100]) == 300 % 257

    def test_dot(self):
        assert self.field.dot([1, 2], [3, 4]) == 11

    def test_dot_length_mismatch(self):
        with pytest.raises(FieldError):
            self.field.dot([1], [1, 2])

    def test_contains(self):
        assert self.field.contains(0)
        assert self.field.contains(256)
        assert not self.field.contains(257)
        assert not self.field.contains(-1)


class TestRandomElements:
    def test_random_element_in_range(self):
        rng = random.Random(7)
        field = PrimeField(257)
        for _ in range(100):
            assert field.contains(field.random_element(rng))

    def test_random_elements_count(self):
        rng = random.Random(7)
        assert len(DEFAULT_FIELD.random_elements(13, rng)) == 13

    def test_reproducible(self):
        a = DEFAULT_FIELD.random_elements(5, random.Random(42))
        b = DEFAULT_FIELD.random_elements(5, random.Random(42))
        assert a == b


@given(a=st.integers(), b=st.integers())
@settings(max_examples=100)
def test_add_commutes(a, b):
    f = DEFAULT_FIELD
    assert f.add(f.element(a), f.element(b)) == f.add(f.element(b), f.element(a))


@given(a=st.integers(), b=st.integers(), c=st.integers())
@settings(max_examples=100)
def test_mul_distributes_over_add(a, b, c):
    f = DEFAULT_FIELD
    a, b, c = f.element(a), f.element(b), f.element(c)
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@given(a=st.integers(min_value=1))
@settings(max_examples=100)
def test_inverse_property(a):
    f = DEFAULT_FIELD
    a = f.element(a)
    if a != 0:
        assert f.mul(a, f.inv(a)) == 1
