"""Unit tests for the asynchronous network engine."""

import pytest

from repro.asynchrony import (
    AsyncNetwork,
    AsyncProcess,
    FIFOScheduler,
    NullAsyncAdversary,
    RandomScheduler,
    SchedulerError,
    TargetedDelayScheduler,
)
from repro.asynchrony.scheduler import AsyncAdversary
from repro.net.messages import Message


class EchoProcess(AsyncProcess):
    """Records deliveries; pid 0 seeds one message to each peer."""

    def __init__(self, pid, n):
        super().__init__(pid)
        self.n = n
        self.seen = []

    def on_start(self):
        if self.pid != 0:
            return []
        return [Message(0, peer, "ping", peer) for peer in range(1, self.n)]

    def on_message(self, message):
        self.seen.append(message)
        return []

    def output(self):
        return len(self.seen) if self.seen else None


class ChattyProcess(AsyncProcess):
    """Forwards each ping once around a ring, then stops."""

    def __init__(self, pid, n, hops):
        super().__init__(pid)
        self.n = n
        self.hops = hops
        self.finished = False

    def on_start(self):
        if self.pid != 0:
            return []
        return [Message(0, 1 % self.n, "hop", self.hops)]

    def on_message(self, message):
        remaining = message.payload
        if remaining <= 0:
            self.finished = True
            return []
        nxt = (self.pid + 1) % self.n
        return [Message(self.pid, nxt, "hop", remaining - 1)]

    def output(self):
        # Only the final recipient ever decides, so the run ends at
        # quiescence after every hop has been delivered.
        return 1 if self.finished else None


def test_fifo_scheduler_delivers_in_send_order():
    n = 4
    processes = [EchoProcess(pid, n) for pid in range(n)]
    network = AsyncNetwork(
        processes, NullAsyncAdversary(n), scheduler=FIFOScheduler()
    )
    result = network.run(max_steps=100)
    # pid 1 gets its ping first, then 2, then 3.
    assert result.steps == 3
    for pid in range(1, n):
        assert processes[pid].seen[0].payload == pid


def test_ring_forwarding_terminates_quiescent():
    n = 5
    processes = [ChattyProcess(pid, n, hops=12) for pid in range(n)]
    network = AsyncNetwork(processes, NullAsyncAdversary(n))
    result = network.run(max_steps=1000)
    # 13 deliveries: the initial hop plus 12 forwards.
    assert result.steps == 13


def test_run_stops_when_all_good_decided():
    n = 3
    processes = [EchoProcess(pid, n) for pid in range(n)]

    # pid 0 never receives anything, so use an adversary-free network and
    # verify it stops at quiescence instead (pid 0 output stays None).
    network = AsyncNetwork(processes, NullAsyncAdversary(n))
    result = network.run(max_steps=100)
    assert result.quiescent or result.steps <= 2


def test_random_scheduler_is_deterministic_per_seed():
    def run(seed):
        n = 5
        processes = [EchoProcess(pid, n) for pid in range(n)]
        network = AsyncNetwork(
            processes,
            NullAsyncAdversary(n),
            scheduler=RandomScheduler(seed),
        )
        network.run(max_steps=100)
        return [p.seen[0].payload if p.seen else None for p in processes]

    assert run(7) == run(7)


def test_targeted_delay_starves_victim_until_fairness():
    n = 6

    class Sink(AsyncProcess):
        def __init__(self, pid):
            super().__init__(pid)
            self.order = []

        def on_start(self):
            if self.pid != 0:
                return []
            return [
                Message(0, peer, "ping", peer) for peer in range(1, n)
            ]

        def on_message(self, message):
            self.order.append(message.payload)
            return []

    processes = [Sink(pid) for pid in range(n)]
    recorder = []

    class Recording(TargetedDelayScheduler):
        def choose(self, pending, step):
            index = super().choose(pending, step)
            recorder.append(pending[index].message.recipient)
            return index

    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=Recording(victims={1}),
    )
    network.run(max_steps=100)
    # Victim 1's ping is delivered last.
    assert recorder[-1] == 1


def test_fairness_bound_forces_old_messages():
    n = 3

    class Stubborn(TargetedDelayScheduler):
        pass

    class Pinger(AsyncProcess):
        def __init__(self, pid):
            super().__init__(pid)
            self.got = 0

        def on_start(self):
            if self.pid != 0:
                return []
            out = [Message(0, 1, "starved", None)]
            out += [Message(0, 2, "chaff", i) for i in range(30)]
            return out

        def on_message(self, message):
            self.got += 1
            if self.pid == 2 and self.got < 40:
                # keep generating chaff so the scheduler always has a choice
                return [Message(2, 2, "self", None)] if False else []
            return []

    processes = [Pinger(pid) for pid in range(n)]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=Stubborn(victims={1}),
        fairness_bound=5,
    )
    network.run(max_steps=100)
    assert processes[1].got == 1  # force-delivered despite starvation


def test_forged_sender_rejected():
    n = 2

    class Forger(AsyncProcess):
        def on_start(self):
            return [Message(1, 0, "forged", None)] if self.pid == 0 else []

        def on_message(self, message):
            return []

    network = AsyncNetwork(
        [Forger(0), Forger(1)], NullAsyncAdversary(n)
    )
    with pytest.raises(SchedulerError):
        network.run(max_steps=10)


def test_adversary_injection_requires_corruption():
    n = 3

    class BadAdversary(AsyncAdversary):
        def __init__(self):
            super().__init__(n, budget=1)

        def on_deliver(self, step, delivered):
            # pid 2 was never corrupted — must be rejected.
            return [Message(2, 0, "fake", None)]

    processes = [EchoProcess(pid, n) for pid in range(n)]
    network = AsyncNetwork(processes, BadAdversary())
    with pytest.raises(SchedulerError):
        network.run(max_steps=10)


def test_adaptive_corruption_capture_and_budget():
    n = 4

    class TakeOverAll(AsyncAdversary):
        def __init__(self):
            super().__init__(n, budget=2)

        def select_corruptions(self, step):
            return {0, 1, 2, 3}

        def on_deliver(self, step, delivered):
            return []

    processes = [EchoProcess(pid, n) for pid in range(n)]
    adversary = TakeOverAll()
    network = AsyncNetwork(processes, adversary)
    network.run(max_steps=10)
    assert len(adversary.corrupted) == 2  # budget enforced
    assert set(adversary.captured_state) == adversary.corrupted


def test_ledger_counts_only_good_sends():
    n = 3

    class Corrupter(AsyncAdversary):
        def __init__(self):
            super().__init__(n, budget=1)

        def select_corruptions(self, step):
            return {1}

        def on_deliver(self, step, delivered):
            # flood from the corrupted pid — must not hit the ledger
            return [Message(1, 0, "flood", 12345)]

    processes = [EchoProcess(pid, n) for pid in range(n)]
    network = AsyncNetwork(processes, Corrupter())
    result = network.run(max_steps=20)
    assert result.ledger.bits_sent_by(1) == 0


def test_invalid_fairness_bound_rejected():
    n = 2
    processes = [EchoProcess(pid, n) for pid in range(n)]
    with pytest.raises(SchedulerError):
        AsyncNetwork(processes, NullAsyncAdversary(n), fairness_bound=0)


def test_pid_slot_mismatch_rejected():
    processes = [EchoProcess(1, 2), EchoProcess(0, 2)]
    with pytest.raises(SchedulerError):
        AsyncNetwork(processes, NullAsyncAdversary(2))


def test_trace_records_deliveries_and_corruptions():
    from repro.net.tracing import TraceRecorder

    n = 3

    class CorruptOne(AsyncAdversary):
        def __init__(self):
            super().__init__(n, budget=1)

        def select_corruptions(self, step):
            return {2}

        def on_deliver(self, step, delivered):
            return []

    trace = TraceRecorder()
    processes = [EchoProcess(pid, n) for pid in range(n)]
    network = AsyncNetwork(processes, CorruptOne(), trace=trace)
    network.run(max_steps=50)
    assert trace.counters["corrupt"] == 1
    assert trace.counters["deliver"] >= 1
