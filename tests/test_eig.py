"""Tests for the EIG baseline."""

import pytest

from repro.adversary.behaviors import EquivocatingBehavior, SilentBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.baselines.eig import EIGProcessor, eig_fault_bound, run_eig


class TestFaultBound:
    def test_thirds(self):
        assert eig_fault_bound(3) == 0
        assert eig_fault_bound(4) == 1
        assert eig_fault_bound(7) == 2
        assert eig_fault_bound(10) == 3


class TestFaultFree:
    def test_unanimous(self):
        for bit in (0, 1):
            result = run_eig(7, [bit] * 7)
            assert set(result.good_outputs().values()) == {bit}

    def test_split_agrees(self):
        result = run_eig(7, [p % 2 for p in range(7)])
        assert len(set(result.good_outputs().values())) == 1

    def test_zero_fault_trivial(self):
        result = run_eig(3, [1, 1, 0])
        assert len(set(result.good_outputs().values())) == 1


class TestByzantine:
    def test_tolerates_t_silent(self):
        n, t = 7, 2
        adversary = StaticByzantineAdversary(
            n, targets=set(range(t)), behavior=SilentBehavior(), seed=1
        )
        result = run_eig(n, [1] * n, adversary=adversary)
        assert set(result.good_outputs().values()) == {1}

    def test_tolerates_equivocators(self):
        n, t = 7, 2
        adversary = StaticByzantineAdversary(
            n,
            targets=set(range(t)),
            behavior=EquivocatingBehavior(),
            seed=2,
            vote_tag="eig",
        )
        result = run_eig(n, [1] * n, adversary=adversary)
        good = result.good_outputs()
        assert len(set(good.values())) == 1


class TestExponentialCost:
    def test_message_volume_explodes(self):
        """The reason EIG died: per-processor bits grow super-quadratically
        with n at full resilience."""
        costs = {}
        for n in (4, 7, 10):
            result = run_eig(n, [1] * n)
            costs[n] = result.ledger.max_bits_per_processor()
        assert costs[7] > 4 * costs[4]
        assert costs[10] > 4 * costs[7]

    def test_rounds_are_t_plus_one(self):
        result = run_eig(7, [1] * 7)
        assert result.rounds == eig_fault_bound(7) + 2  # + resolve round


class TestValidation:
    def test_input_length(self):
        with pytest.raises(ValueError):
            run_eig(4, [1])

    def test_tree_pruning(self):
        """Paths never repeat a relayer."""
        proc = EIGProcessor(0, 5, 1, t=2)
        messages = proc.on_round(1, [])
        for m in messages:
            path, _value = m.payload
            assert 0 not in path
