"""Tests for the engine telemetry plane (spans, reports, wire, monitor).

The contract, pinned piece by piece:

* **stats wire field** — ``UnitStats`` round-trips through the reply
  envelope's versioned ``stats`` field, and a worker that sends none
  (or an unknown version) decodes to *absent*, never to an error:
  old workers stay interoperable.
* **RunReport.merge** — exactly associative over arbitrary shards,
  because raw samples concatenate and derived metrics are computed at
  read time.
* **edge cases** — empty sweeps and zero-unit telemetry freeze, render
  and round-trip without special-casing.
* **non-perturbation** — with telemetry always on, every backend's
  results stay bit-identical to the serial seed, registry-wide.
"""

import io
import math
import random

import pytest

from repro.engine import (
    AsyncBackend,
    BatchBackend,
    Engine,
    ExperimentSpec,
    LaneReport,
    LedgerStats,
    ProcessPoolBackend,
    RunReport,
    RunTelemetry,
    SerialBackend,
    SweepMonitor,
    UnitStats,
    WireFormatError,
    WorkerServer,
    get_runner,
    report_from_wire,
    report_to_wire,
    run_units,
    scenario_names,
    stats_from_wire,
    stats_to_wire,
)
from repro.engine.dispatch import DispatchPlan, InlineTransport
from repro.engine.distributed import DistributedBackend
from repro.engine.spec import wire_dumps, wire_loads


def _spec(runner="bracha-broadcast", n=5, trials=6, seed=3, **params):
    return ExperimentSpec(
        runner=runner, n=n, trials=trials, seed=seed, params=params
    )


# -- the stats wire field --------------------------------------------------------------


class TestStatsWire:
    def test_round_trip(self):
        stats = UnitStats(
            compute_seconds=0.125, trial_seconds=(0.06, 0.065)
        )
        assert stats_from_wire(stats_to_wire(stats)) == stats
        empty = UnitStats()
        assert stats_from_wire(stats_to_wire(empty)) == empty

    def test_absent_field_decodes_to_none(self):
        """The legacy-worker rule: a reply without ``stats`` is fine."""
        assert stats_from_wire(None) is None

    def test_unknown_version_decodes_to_none(self):
        """Stats are advisory: a future version degrades to absent,
        it never breaks the dispatch."""
        doc = stats_to_wire(UnitStats(compute_seconds=1.0))
        doc["stats_version"] = 999
        assert stats_from_wire(doc) is None

    def test_malformed_decodes_to_none(self):
        assert stats_from_wire("nonsense") is None
        assert stats_from_wire({"stats_version": 1}) is None
        doc = stats_to_wire(UnitStats(compute_seconds=1.0))
        doc["compute_seconds"] = float("nan")
        assert stats_from_wire(doc) is None

    def test_non_finite_stats_refuse_to_encode(self):
        with pytest.raises(WireFormatError):
            stats_to_wire(UnitStats(compute_seconds=float("inf")))

    def test_stats_survive_json(self):
        stats = UnitStats(compute_seconds=0.5, trial_seconds=(0.25, 0.25))
        assert stats_from_wire(
            wire_loads(wire_dumps(stats_to_wire(stats)))
        ) == stats


class TestLegacyWorkerInterop:
    def test_mixed_stats_and_legacy_workers(self):
        """A no-stats worker interoperates: parity holds, its lane just
        reports no compute samples."""
        spec = _spec(trials=8)
        serial = SerialBackend().run_trials(spec)
        modern = WorkerServer().start()
        legacy = WorkerServer(stats=False).start()
        try:
            with DistributedBackend(
                [modern.address, legacy.address], unit_size=2
            ) as backend:
                assert backend.run_trials(spec) == serial
                report = backend.telemetry.report(serial)
        finally:
            modern.close()
            legacy.close()
        lanes = report.lane_map()
        modern_lane = lanes[modern.address]
        legacy_lane = lanes[legacy.address]
        assert modern_lane.units_ok + legacy_lane.units_ok == 4
        # The modern lane stamped compute time for every unit it ran;
        # the legacy lane stamped none — and that is not an error.
        assert len(modern_lane.compute_seconds) == modern_lane.units_ok
        assert legacy_lane.compute_seconds == ()
        # Wire counters come from the transport, not the worker, so
        # both lanes have them.
        for lane in (modern_lane, legacy_lane):
            if lane.units_ok:
                assert lane.bytes_out > 0 and lane.bytes_in > 0
                assert len(lane.round_trip_seconds) >= lane.units_ok
                assert lane.dials >= 1


# -- merge algebra ---------------------------------------------------------------------


def _random_report(rng: random.Random) -> RunReport:
    # Lanes in canonical (sorted) order, as RunTelemetry.report and
    # RunReport.merge both emit them.
    lanes = []
    for lane_id in sorted(
        rng.sample(["a", "b", "c", "d"], rng.randint(0, 3))
    ):
        units = rng.randint(1, 4)
        lanes.append(
            LaneReport(
                lane=lane_id,
                units_ok=units,
                units_failed=rng.randint(0, 2),
                trials=units * 2,
                unit_seconds=tuple(
                    rng.random() for _ in range(units)
                ),
                compute_seconds=tuple(
                    rng.random() for _ in range(rng.randint(0, units))
                ),
                round_trip_seconds=tuple(
                    rng.random() for _ in range(rng.randint(0, 5))
                ),
                bytes_out=rng.randint(0, 10_000),
                bytes_in=rng.randint(0, 10_000),
                dials=rng.randint(0, 2),
                redials=rng.randint(0, 2),
                dead_events=rng.randint(0, 1),
            )
        )
    samples = tuple(s for lane in lanes for s in lane.unit_seconds)
    return RunReport(
        backend=rng.choice(["distributed", "hybrid", ""]),
        trials=sum(lane.trials for lane in lanes),
        failures=rng.randint(0, 2),
        wall_seconds=rng.random() * 10,
        unit_attempts=sum(lane.units_ok for lane in lanes),
        retries=rng.randint(0, 3),
        rebalances=rng.randint(0, 2),
        unit_seconds=samples,
        lanes=tuple(lanes),
        ledger=LedgerStats(
            total_bits=rng.randint(0, 1 << 20),
            total_messages=rng.randint(0, 1000),
            max_bits_per_processor=rng.randint(0, 1 << 10),
            rounds=rng.randint(0, 100),
        ),
        trial_bits=tuple(
            rng.randint(0, 4096) for _ in range(rng.randint(0, 6))
        ),
        trace_counters=tuple(
            sorted(
                (kind, rng.randint(1, 9))
                for kind in rng.sample(["send", "recv", "drop"],
                                       rng.randint(0, 3))
            )
        ),
    )


class TestMergeAlgebra:
    def test_merge_is_associative_over_random_shards(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(50):
            a, b, c = (_random_report(rng) for _ in range(3))
            assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_report_is_identity(self):
        rng = random.Random(7)
        empty = RunReport()
        for _ in range(10):
            report = _random_report(rng)
            assert empty.merge(report) == report
            merged = report.merge(empty)
            # Right identity up to the backend fold (empty never wins).
            assert merged == report

    def test_differing_backends_fold_to_mixed(self):
        a = RunReport(backend="process", trials=1)
        b = RunReport(backend="distributed", trials=2)
        assert a.merge(b).backend == "mixed"
        assert a.merge(RunReport(backend="process")).backend == "process"

    def test_merge_survives_the_wire(self):
        """Percentiles computed after wire round-trip + merge match the
        in-memory fold: the artifact loses nothing."""
        rng = random.Random(21)
        a, b = _random_report(rng), _random_report(rng)
        folded = a.merge(b)
        rewired = report_from_wire(
            wire_loads(wire_dumps(report_to_wire(a)))
        ).merge(
            report_from_wire(wire_loads(wire_dumps(report_to_wire(b))))
        )
        assert rewired == folded
        for q in (50, 90, 99):
            assert rewired.unit_latency(q) == folded.unit_latency(q)

    def test_lane_merge_rejects_mismatched_ids(self):
        with pytest.raises(ValueError, match="lane"):
            LaneReport(lane="a").merge(LaneReport(lane="b"))


# -- edge cases ------------------------------------------------------------------------


class TestEdgeCases:
    def test_zero_unit_telemetry_freezes_cleanly(self):
        telemetry = RunTelemetry(backend="serial", total_trials=0)
        telemetry.finish()
        report = telemetry.report([])
        assert report.trials == 0
        assert report.unit_attempts == 0
        assert report.unit_latency(50) == 0.0
        assert report.straggler_ratio() == 0.0
        assert report.trials_per_second() == 0.0
        assert "run summary" in report.render()
        assert report_from_wire(report_to_wire(report)) == report

    def test_empty_unit_list_with_telemetry(self):
        telemetry = RunTelemetry(backend="test")
        assert run_units([], InlineTransport(), telemetry=telemetry) == []
        telemetry.finish()
        assert telemetry.report([]).unit_attempts == 0

    def test_non_finite_report_refuses_to_encode(self):
        with pytest.raises(WireFormatError):
            report_to_wire(RunReport(wall_seconds=float("nan")))
        with pytest.raises(WireFormatError):
            report_to_wire(
                RunReport(
                    lanes=(
                        LaneReport(lane="a", unit_seconds=(math.inf,)),
                    )
                )
            )

    def test_report_from_wire_rejects_malformed(self):
        doc = report_to_wire(RunReport(backend="serial"))
        del doc["lanes"]
        with pytest.raises(WireFormatError, match="malformed"):
            report_from_wire(doc)
        with pytest.raises(WireFormatError):
            report_from_wire({"version": 1, "kind": "result"})

    def test_trace_counters_bridge(self):
        """``report(trace=...)`` accepts a TraceRecorder-shaped object
        or a plain mapping of per-kind counters."""
        telemetry = RunTelemetry(backend="serial")
        telemetry.finish()

        class FakeTrace:
            counters = {"deliver": 3, "corrupt": 1}

        by_object = telemetry.report([], trace=FakeTrace())
        by_mapping = telemetry.report(
            [], trace={"deliver": 3, "corrupt": 1}
        )
        assert by_object.trace_counters == (("corrupt", 1), ("deliver", 3))
        assert by_object.trace_counters == by_mapping.trace_counters
        assert "trace[deliver]" in by_object.render()


# -- dispatch integration --------------------------------------------------------------


class TestDispatchIntegration:
    def test_run_units_records_every_attempt(self):
        spec = _spec(trials=6)
        units = DispatchPlan.chunked(6, 2, 2).units(spec)
        telemetry = RunTelemetry(backend="test", total_trials=6)
        results = run_units(units, InlineTransport(), telemetry=telemetry)
        telemetry.finish()
        assert results == SerialBackend().run_trials(spec)
        report = telemetry.report(results)
        assert report.unit_attempts == 3
        assert report.retries == 0
        assert report.trials == 6
        assert len(report.unit_seconds) == 3
        # Inline lanes execute in-process, so every unit carries stats.
        (lane,) = report.lanes
        assert lane.lane == "inline"
        assert len(lane.compute_seconds) == 3

    def test_engine_attaches_report(self):
        spec = _spec(trials=4)
        result = Engine("serial").run(spec)
        assert result.report is not None
        assert result.report.backend == "serial"
        assert result.report.trials == 4
        assert result.report.unit_attempts == 4
        assert len(result.report.trial_bits) == 4
        assert result.report.ledger.total_bits == sum(
            t.ledger.total_bits for t in result.trials
        )


# -- non-perturbation, registry-wide ---------------------------------------------------


class TestTelemetryParity:
    def test_registry_parity_with_telemetry_enabled(self):
        """Telemetry watches, never steers: every in-process backend
        stays bit-identical to serial for every declared scenario."""
        for name in scenario_names(declared_only=True):
            runner = get_runner(name)
            spec = ExperimentSpec(
                runner=name,
                n=runner.smoke_n,
                trials=3,
                seed=11,
                params=dict(runner.smoke_params),
            )
            serial = SerialBackend()
            seed = serial.run_trials(spec)
            assert serial.telemetry is not None, name
            assert serial.telemetry.report(seed).trials == 3, name
            for backend in (BatchBackend(), AsyncBackend(max_live=2)):
                assert backend.run_trials(spec) == seed, (
                    name, backend.name
                )
                assert backend.telemetry.report(seed).trials == 3, name

    def test_process_pool_parity_with_telemetry(self):
        spec = _spec(trials=6)
        seed = SerialBackend().run_trials(spec)
        backend = ProcessPoolBackend(workers=2, chunk_size=2)
        assert backend.run_trials(spec) == seed
        report = backend.telemetry.report(seed)
        assert report.backend == "process"
        assert report.trials == 6
        assert report.unit_attempts == 3


# -- the live monitor ------------------------------------------------------------------


class _TtyBuffer(io.StringIO):
    def isatty(self):
        return True


class TestSweepMonitor:
    def test_non_tty_stream_stays_silent(self):
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream)
        assert not monitor.enabled
        monitor.update(done=1, total=4, elapsed=0.5, lane_rates={})
        monitor.finish()
        assert stream.getvalue() == ""

    def test_tty_stream_draws_and_finishes(self):
        stream = _TtyBuffer()
        monitor = SweepMonitor(stream=stream, min_interval=0.0)
        monitor.update(
            done=2, total=4, elapsed=1.0, lane_rates={"w1": 2.0}
        )
        monitor.update(done=4, total=4, elapsed=2.0, lane_rates={})
        monitor.finish()
        out = stream.getvalue()
        assert "\r[sweep] 2/4 trials" in out
        assert "w1:2.0/s" in out
        assert "4/4 trials" in out
        assert out.endswith("\n")

    def test_backend_threads_monitor_through_degrade_paths(self):
        stream = _TtyBuffer()
        backend = ProcessPoolBackend(workers=1)  # degrades to serial
        backend.monitor = SweepMonitor(stream=stream, min_interval=0.0)
        backend.run_trials(_spec(trials=3))
        assert "3/3 trials" in stream.getvalue()


# -- the CLI surface -------------------------------------------------------------------


class TestCli:
    def test_telemetry_flag_writes_renderable_artifact(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.engine.telemetry import load_report

        out = tmp_path / "telemetry.json"
        assert main([
            "run-experiment", "--name", "bracha-broadcast", "-n", "5",
            "--trials", "4", "--telemetry", str(out),
        ]) == 0
        report = load_report(str(out))
        assert report.backend == "serial"
        assert report.trials == 4
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "run summary [serial]" in rendered
        assert "protocol bridge" in rendered

    def test_report_rejects_garbage_artifact(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
