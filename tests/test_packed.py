"""Tests for packed (ramp) secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.packed import PackedShamirScheme
from repro.crypto.shamir import SecretSharingError, Share


def scheme(n=12, secrecy=4, k=3):
    return PackedShamirScheme(n_players=n, secrecy=secrecy, block_size=k)


class TestConstruction:
    def test_threshold(self):
        assert scheme().reconstruction_threshold == 7

    def test_rejects_oversized_block(self):
        with pytest.raises(SecretSharingError):
            PackedShamirScheme(n_players=4, secrecy=3, block_size=3)

    def test_rejects_bad_params(self):
        with pytest.raises(SecretSharingError):
            PackedShamirScheme(n_players=0, secrecy=1, block_size=1)
        with pytest.raises(SecretSharingError):
            PackedShamirScheme(n_players=4, secrecy=0, block_size=1)
        with pytest.raises(SecretSharingError):
            PackedShamirScheme(n_players=4, secrecy=1, block_size=0)


class TestRoundtrip:
    def test_basic(self):
        s = scheme()
        rng = random.Random(1)
        block = [11, 22, 33]
        shares = s.deal(block, rng)
        assert len(shares) == 12
        assert s.reconstruct(shares) == block

    def test_threshold_subset_suffices(self):
        s = scheme()
        rng = random.Random(2)
        block = [5, 6, 7]
        shares = s.deal(block, rng)
        assert s.reconstruct(shares[: s.reconstruction_threshold]) == block
        assert s.reconstruct(shares[-s.reconstruction_threshold:]) == block

    def test_below_threshold_fails(self):
        s = scheme()
        shares = s.deal([1, 2, 3], random.Random(3))
        with pytest.raises(SecretSharingError):
            s.reconstruct(shares[: s.reconstruction_threshold - 1])

    def test_conflicting_shares_rejected(self):
        s = scheme()
        shares = s.deal([1, 2, 3], random.Random(4))
        bad = list(shares) + [Share(shares[0].x, shares[0].value + 1)]
        with pytest.raises(SecretSharingError):
            s.reconstruct(bad)

    def test_wrong_block_size_rejected(self):
        with pytest.raises(SecretSharingError):
            scheme().deal([1, 2], random.Random(5))


class TestSecrecy:
    def test_small_coalitions_see_uniform_shares(self):
        """<= secrecy shares are consistent with any block (statistical
        check: the same coalition positions take many values across
        dealings of the same block)."""
        field = PrimeField(257)
        s = PackedShamirScheme(
            n_players=8, secrecy=3, block_size=2, field=field
        )
        seen = set()
        for seed in range(300):
            shares = s.deal([42, 43], random.Random(seed))
            seen.add(shares[0].value)
        assert len(seen) > 120

    def test_bandwidth_win(self):
        s = scheme(k=3)
        assert s.bandwidth_ratio_vs_shamir() == pytest.approx(1 / 3)
        assert s.share_bits() == DEFAULT_FIELD.element_bits


@given(
    words=st.lists(
        st.integers(min_value=0, max_value=DEFAULT_FIELD.modulus - 1),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(words, seed):
    s = PackedShamirScheme(
        n_players=10, secrecy=3, block_size=len(words)
    )
    shares = s.deal(words, random.Random(seed))
    assert s.reconstruct(shares) == [
        w % DEFAULT_FIELD.modulus for w in words
    ]
