"""Smoke tests: every example script must run clean from a subprocess.

Examples are the public face of the library; these tests guard them
against bit-rot.  Each is executed exactly as a user would run it and
must exit 0 with its headline output present.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script name -> a string its stdout must contain.
EXPECTED = {
    "quickstart.py": "agreed bit",
    "replica_sync.py": "",
    "sensor_alarm.py": "",
    "randomness_beacon.py": "",
    "committee_election.py": "",
    "rotating_leaders.py": "budget drain",
    "ordered_log.py": "every slot valid",
    "async_agreement.py": "speedup",
    "engine_sweep.py": "bit-identical to serial: True",
    "lower_bound_attack.py": "ATTACK SUCCEEDED",
    "private_aggregation.py": "never opened",
    "sync_over_async.py": "members agree: True",
}


def run_example(name):
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stderr[-2000:]}"
    )
    marker = EXPECTED[name]
    if marker:
        assert marker in result.stdout


def test_every_example_file_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED), (
        "examples/ and the EXPECTED map are out of sync: "
        f"{scripts.symmetric_difference(set(EXPECTED))}"
    )
