"""Tests for certified propagation (sparse-network a.e. broadcast)."""

import random

import pytest

from repro.baselines.cpa import (
    CPAOutcome,
    RandomLiarAdversary,
    SurroundAdversary,
    run_cpa,
)
from repro.topology.sparse_graph import random_regular_graph


def test_fault_free_reaches_everyone():
    outcome = run_cpa(n=60, dealer=0, value=1, seed=1)
    assert outcome.reached_fraction == 1.0
    assert outcome.accepted_wrong == 0
    assert outcome.unreached == 0


def test_fault_free_value_zero():
    outcome = run_cpa(n=40, dealer=5, value=0, seed=2)
    assert outcome.reached_fraction == 1.0


def test_random_corruption_almost_everywhere():
    """Random liars below the local bound: nearly all good nodes accept
    the true value — the 1986-line a.e. broadcast guarantee."""
    n = 100
    outcome = run_cpa(
        n=n, dealer=0, value=1, seed=3,
        adversary_factory=lambda adj: RandomLiarAdversary(
            adj, budget=n // 12, lie_value=0, seed=3, protected={0}
        ),
    )
    assert outcome.reached_fraction >= 0.9
    assert outcome.accepted_wrong <= 3


def test_surrounded_victim_is_cut_off():
    """The Section 2 impossibility: a victim whose whole neighborhood is
    corrupt accepts the adversary's value (or nothing) — everywhere
    broadcast cannot be guaranteed on a sparse static topology."""
    n = 60
    victim = 30
    outcome = run_cpa(
        n=n, dealer=0, value=1, seed=4,
        adversary_factory=lambda adj: SurroundAdversary(
            adj, victim=victim, true_value=1, lie_value=0
        ),
    )
    # Everyone else is fine...
    good_other = (
        outcome.accepted_correct
    )
    assert good_other >= n - len(outcome.corrupted) - 1
    # ...but the victim was certified the lie or left unreached.
    assert outcome.accepted_wrong + outcome.unreached == 1


def test_surround_uses_only_neighborhood_budget():
    n = 80
    victim = 40
    outcome = run_cpa(
        n=n, dealer=0, value=1, seed=5, degree=6,
        adversary_factory=lambda adj: SurroundAdversary(
            adj, victim=victim, true_value=1, lie_value=0
        ),
    )
    assert len(outcome.corrupted) == 6  # exactly the victim's degree


def test_higher_degree_shrinks_surround_feasibility():
    """Quantifies the sparse trade-off: the surround budget is the degree,
    so denser graphs price the attack up (toward the paper's full model,
    where 'degree' is effectively n and surrounding is impossible)."""
    budgets = {}
    for degree in (4, 8, 16):
        n = 80
        outcome = run_cpa(
            n=n, dealer=0, value=1, seed=6, degree=degree,
            adversary_factory=lambda adj: SurroundAdversary(
                adj, victim=40, true_value=1, lie_value=0
            ),
        )
        budgets[degree] = len(outcome.corrupted)
    assert budgets[4] < budgets[8] < budgets[16]


def test_dealer_needs_value():
    with pytest.raises(ValueError):
        run_cpa(n=10, dealer=0, value=None, seed=0)  # type: ignore[arg-type]


def test_local_fault_bound_gates_certification():
    """With local_fault_bound >= degree, no relay quorum can ever form:
    only the dealer's direct neighbors learn the value."""
    n = 30
    degree = 4
    outcome = run_cpa(
        n=n, dealer=0, value=1, seed=7, degree=degree,
        local_fault_bound=degree,
    )
    # dealer + its neighbors accept; everyone else is unreached.
    assert outcome.accepted_correct <= 1 + degree
    assert outcome.unreached >= n - 2 - degree


def test_outcome_accounting_consistent():
    n = 50
    outcome = run_cpa(n=n, dealer=0, value=1, seed=8)
    good = n - len(outcome.corrupted)
    assert (
        outcome.accepted_correct
        + outcome.accepted_wrong
        + outcome.unreached
        == good
    )
