"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_info_command(capsys):
    assert main(["info", "-n", "54"]) == 0
    out = capsys.readouterr().out
    assert "n = 54" in out
    assert "k1" in out


def test_run_ba_fault_free(capsys):
    assert main(["run-ba", "-n", "27"]) == 0
    out = capsys.readouterr().out
    assert "agreed bit" in out
    assert "validity           : True" in out


def test_run_ba_with_corruption(capsys):
    assert main(["run-ba", "-n", "27", "--corrupt", "0.1",
                 "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "corruption = 10%" in out


def test_run_ba_forced_input(capsys):
    assert main(["run-ba", "-n", "27", "--input-bit", "1"]) == 0
    out = capsys.readouterr().out
    assert "agreed bit         : 1" in out


def test_costmodel_command(capsys):
    assert main(
        ["costmodel", "--start", "1024", "--stop", "4096", "--factor", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "Phase King" in out
    assert "1,024" in out


def test_attack_guessing(capsys):
    assert main(["attack", "guessing", "-n", "60"]) == 0
    out = capsys.readouterr().out
    assert "Coin-guessing" in out
    assert "victim" in out


def test_attack_isolation(capsys):
    assert main(["attack", "isolation", "-n", "60"]) == 0
    out = capsys.readouterr().out
    assert "Isolation attack" in out
    assert "ISOLATED" in out


def test_run_async(capsys):
    assert main(["run-async", "-n", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Ben-Or" in out
    assert "common coin" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_costmodel_plot(capsys):
    assert main(
        ["costmodel", "--start", "1024", "--stop", "65536",
         "--factor", "4", "--plot"]
    ) == 0
    out = capsys.readouterr().out
    assert "fitted exponents" in out
    assert "*=this paper" in out
    assert "|" in out


def test_report_to_stdout(capsys):
    assert main(["report", "-n", "27"]) == 0
    out = capsys.readouterr().out
    assert "# repro experiment report" in out
    assert "Everywhere BA at n = 27" in out
    assert "| corruption |" in out


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", "-n", "27", "--out", str(target)]) == 0
    assert target.exists()
    assert "Dolev-Reischuk" in target.read_text()


def test_elect_leader_fault_free(capsys):
    assert main(["elect-leader", "-n", "27", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Leader rotation, n = 27" in out
    assert out.count("-> leader") == 3
    assert "good fraction      : 100%" in out


def test_elect_leader_with_corruption(capsys):
    assert main(
        ["elect-leader", "-n", "27", "--rounds", "3",
         "--corrupt", "0.1", "--seed", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "corruption = 10%" in out
    assert "weakest agreement" in out


def test_commit_log_fault_free(capsys):
    assert main(["commit-log", "-n", "27", "--slots", "2"]) == 0
    out = capsys.readouterr().out
    assert "Replicated log, n = 27" in out
    assert out.count("  slot ") == 2
    assert "all valid              : True" in out


def test_commit_log_with_corruption(capsys):
    assert main(
        ["commit-log", "-n", "27", "--slots", "3",
         "--corrupt", "0.1", "--seed", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "corruption = 10%" in out
    assert "amortized bits/slot" in out


def test_run_experiment_list(capsys):
    assert main(["run-experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "everywhere-ba" in out
    assert "vss-coin [batchable]" in out


def test_run_experiment_list_shows_schema(capsys):
    """--list renders each scenario's declared parameters, types and
    defaults from the schema, plus the metric contract."""
    assert main(["run-experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "--param corrupt: float = 0.0" in out
    assert "--param degree: int = auto" in out
    assert "one of: split, thirds, ones, zeros" in out
    assert "metrics: agreed, coin, corrupted" in out
    assert "common-coin-ba [async]" in out


def test_run_experiment_unknown_param_rejected(capsys):
    assert main(
        ["run-experiment", "--name", "everywhere-ba", "--trials", "1",
         "--param", "corupt=0.1"]
    ) == 2
    err = capsys.readouterr().err
    assert "unknown parameter 'corupt'" in err
    assert "did you mean 'corrupt'?" in err


def test_run_experiment_ill_typed_param_rejected(capsys):
    assert main(
        ["run-experiment", "--name", "unreliable-coin-ba", "-n", "24",
         "--trials", "1", "--param", "num_rounds=lots"]
    ) == 2
    assert "expects int" in capsys.readouterr().err


def test_run_experiment_bad_choice_rejected(capsys):
    assert main(
        ["run-experiment", "--name", "vss-coin", "-n", "7",
         "--trials", "1", "--param", "adversary=nope"]
    ) == 2
    assert "must be one of" in capsys.readouterr().err


def test_run_experiment_async_backend(capsys):
    assert main(
        ["run-experiment", "--name", "common-coin-ba", "-n", "6",
         "--trials", "3", "--backend", "async"]
    ) == 0
    out = capsys.readouterr().out
    assert "async backend" in out
    assert "steps" in out


def test_run_experiment_serial(capsys):
    assert main(
        ["run-experiment", "--name", "vss-coin", "-n", "7",
         "--trials", "3", "--seed", "5"]
    ) == 0
    out = capsys.readouterr().out
    assert "vss-coin(n=7, trials=3, seed=5" in out
    assert "agreed" in out
    assert "3 trials, 0 failures" in out


def test_run_experiment_batch_backend(capsys):
    assert main(
        ["run-experiment", "--name", "unreliable-coin-ba", "-n", "40",
         "--trials", "4", "--backend", "batch",
         "--param", "num_rounds=1"]
    ) == 0
    out = capsys.readouterr().out
    assert "batch backend" in out
    assert "top_fraction" in out


def test_run_experiment_process_backend(capsys):
    assert main(
        ["run-experiment", "--name", "vss-coin", "-n", "7",
         "--trials", "4", "--backend", "process", "--workers", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "process backend" in out


def test_run_experiment_hybrid_backend(capsys):
    assert main(
        ["run-experiment", "--name", "common-coin-ba", "-n", "6",
         "--trials", "5", "--backend", "hybrid", "--workers", "2",
         "--wave-size", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "hybrid backend" in out
    assert "steps" in out


def test_run_experiment_hybrid_rejects_sync_scenario(capsys):
    assert main(
        ["run-experiment", "--name", "vss-coin", "-n", "7",
         "--trials", "2", "--backend", "hybrid"]
    ) == 2
    err = capsys.readouterr().err
    assert "does not support the hybrid backend" in err
    assert "serial, process, batch" in err


def test_run_experiment_cross_field_check_rejected(capsys):
    assert main(
        ["run-experiment", "--name", "unreliable-coin-ba", "-n", "24",
         "--trials", "1", "--param", "degree=30"]
    ) == 2
    err = capsys.readouterr().err
    assert "degree 30 must be < n = 24" in err


def test_run_experiment_backends_bit_identical(capsys):
    for backend in ("serial", "process", "batch"):
        assert main(
            ["run-experiment", "--name", "vss-coin", "-n", "7",
             "--trials", "2", "--seed", "9", "--backend", backend]
        ) == 0
    out = capsys.readouterr().out
    tables = [
        block for block in out.split("=== ") if block.startswith("vss-coin")
    ]
    assert len(tables) == 3
    # Identical aggregates modulo the backend-name/timing note line.
    bodies = [
        "\n".join(
            line for line in block.splitlines()
            if "backend" not in line and "[" not in line
        )
        for block in tables
    ]
    assert bodies[0] == bodies[1] == bodies[2]


def test_run_experiment_unknown_runner(capsys):
    assert main(
        ["run-experiment", "--name", "no-such-runner", "--trials", "1"]
    ) == 2
    err = capsys.readouterr().err
    assert "unknown experiment runner" in err
    assert "vss-coin" in err  # the error names the valid choices


def test_run_experiment_zero_trials(capsys):
    assert main(["run-experiment", "--trials", "0"]) == 2
    assert "at least one trial" in capsys.readouterr().err


def test_run_experiment_bad_param():
    with pytest.raises(SystemExit):
        main(["run-experiment", "--param", "not-a-pair", "--trials", "1"])


# -- distributed backend and the worker subcommand --------------------------------------


def test_worker_serve_parser():
    parser = build_parser()
    args = parser.parse_args(["worker", "serve", "--port", "0"])
    assert args.worker_command == "serve"
    assert args.port == 0
    assert args.host == "127.0.0.1"
    with pytest.raises(SystemExit):
        parser.parse_args(["worker"])  # subcommand required


def test_run_experiment_distributed_requires_hosts(capsys):
    assert main(
        ["run-experiment", "--name", "vss-coin", "-n", "7",
         "--trials", "1", "--backend", "distributed"]
    ) == 2
    assert "--hosts" in capsys.readouterr().err


def test_run_experiment_distributed_against_loopback_workers(capsys):
    """The CLI's distributed leg end to end: two in-process workers,
    one sweep, aggregates identical to the serial leg."""
    from repro.engine import WorkerServer

    with WorkerServer() as w1, WorkerServer() as w2:
        assert main(
            ["run-experiment", "--name", "bracha-broadcast", "-n", "5",
             "--trials", "6", "--seed", "4", "--backend", "distributed",
             "--hosts", f"{w1.address},{w2.address}"]
        ) == 0
        assert main(
            ["run-experiment", "--name", "bracha-broadcast", "-n", "5",
             "--trials", "6", "--seed", "4", "--backend", "serial"]
        ) == 0
    out = capsys.readouterr().out
    tables = [
        block for block in out.split("=== ")
        if block.startswith("bracha-broadcast")
    ]
    assert len(tables) == 2
    bodies = [
        "\n".join(
            line for line in block.splitlines()
            if "backend" not in line and "[" not in line
        )
        for block in tables
    ]
    assert bodies[0] == bodies[1]
