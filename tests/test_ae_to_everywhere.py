"""Tests for Algorithm 3: almost-everywhere to everywhere (Theorem 4)."""

import random

import pytest

from repro.core.ae_to_everywhere import (
    AEToEProcessor,
    FakeResponderAdversary,
    run_ae_to_everywhere,
)
from repro.core.parameters import ProtocolParameters

N = 64
MESSAGE = 5


def make_params(n=N):
    return ProtocolParameters.simulation(n)


def knowledgeable_majority(n, epsilon=1 / 12, exclude=()):
    """A (1/2 + eps)-sized knowledgeable set avoiding ``exclude``."""
    count = int((0.5 + 2 * epsilon) * n)
    pool = [p for p in range(n) if p not in exclude]
    return set(pool[:count])


class TestFaultFree:
    def test_few_loops_decide_everyone(self):
        """Lemma 10: each loop succeeds with constant probability, so a
        handful of repetitions decides everyone."""
        params = make_params()
        knowledgeable = knowledgeable_majority(N)
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE, k_sequence=[3, 5, 7, 2], seed=1
        )
        assert result.everyone_agrees(MESSAGE)

    def test_no_bad_decision(self):
        params = make_params()
        knowledgeable = knowledgeable_majority(N)
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE, k_sequence=[2], seed=2
        )
        assert result.no_bad_decision(MESSAGE)

    def test_bits_scale_with_sqrt_n(self):
        """Theorem 4: O~(sqrt n) bits per processor per loop."""
        params = make_params()
        knowledgeable = knowledgeable_majority(N)
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE, k_sequence=[1], seed=3
        )
        sqrt_n = params.sqrt_n()
        fanout = params.request_fanout()
        # Requests dominate: sqrt(n) * fanout messages of ~20 bits, plus
        # responses.  Allow a generous constant.
        assert result.max_bits_per_processor < 80 * sqrt_n * fanout

    def test_early_exit_when_all_decided(self):
        params = make_params()
        knowledgeable = knowledgeable_majority(N)
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE,
            k_sequence=[1, 2, 3, 4, 5, 6, 7, 8], seed=4,
        )
        # Fault-free: a few loops decide everyone; later ones are skipped.
        assert result.loops_run < 8

    def test_loop_stats_recorded(self):
        params = make_params()
        knowledgeable = knowledgeable_majority(N)
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE, k_sequence=[1], seed=5
        )
        assert result.loop_stats[0].k == 1
        assert result.loop_stats[0].deciders > 0


class TestAgainstAdversary:
    def test_fake_responders_cannot_split(self):
        """Lemma 7(2): good processors decide M or stay undecided."""
        params = make_params()
        corrupted = set(range(10))
        knowledgeable = knowledgeable_majority(N, exclude=corrupted)
        adversary = FakeResponderAdversary(
            N, targets=corrupted, fake_message=MESSAGE + 1, seed=6
        )
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE, k_sequence=[2, 4], seed=7,
            adversary=adversary,
        )
        assert result.no_bad_decision(MESSAGE)

    def test_decides_despite_fake_responders(self):
        params = make_params()
        corrupted = set(range(10))
        knowledgeable = knowledgeable_majority(N, exclude=corrupted)
        adversary = FakeResponderAdversary(
            N, targets=corrupted, fake_message=MESSAGE + 1, seed=8
        )
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE,
            k_sequence=[1, 3, 5, 7, 2, 4], seed=9, adversary=adversary,
        )
        assert result.everyone_agrees(MESSAGE)

    def test_overload_attack_on_known_label_slows_but_is_safe(self):
        """When the adversary knows k in advance (a bad coin word) it can
        overload that label; the loop fails but later good-k loops
        recover — Lemma 9's accounting."""
        params = make_params()
        corrupted = set(range(10))
        knowledgeable = knowledgeable_majority(N, exclude=corrupted)
        adversary = FakeResponderAdversary(
            N, targets=corrupted, fake_message=MESSAGE + 1,
            known_bad_loops={0: 2}, seed=10,
        )
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE,
            k_sequence=[2, 4], seed=11, adversary=adversary,
        )
        assert result.no_bad_decision(MESSAGE)
        # The overloaded loop must have muted some responders.
        assert result.loop_stats[0].overloaded_responders > 0 or (
            result.loop_stats[0].undecided_after == 0
        )


class TestDecisionThreshold:
    def test_threshold_formula(self):
        params = make_params()
        threshold = AEToEProcessor.decision_threshold(params)
        fanout = params.request_fanout()
        assert threshold >= fanout // 2
        assert threshold <= fanout

    def test_confused_never_respond(self):
        """A confused processor has nothing to answer with."""
        params = make_params(16)
        proc = AEToEProcessor(
            pid=0, n=16, knowledgeable=False, message=None,
            k_of_loop=lambda loop: 1, params=params,
            rng=random.Random(0), loops=1,
        )
        from repro.net.messages import Message

        requests = [Message(5, 0, "ae2e_request", 1)]
        proc.on_round(1, [])
        replies = proc.on_round(2, requests)
        assert replies == []

    def test_duplicate_requests_dropped(self):
        """The anti-flooding acceptance rule: one request per sender."""
        params = make_params(16)
        proc = AEToEProcessor(
            pid=0, n=16, knowledgeable=True, message=9,
            k_of_loop=lambda loop: 1, params=params,
            rng=random.Random(0), loops=1,
        )
        from repro.net.messages import Message

        requests = [
            Message(5, 0, "ae2e_request", 1),
            Message(5, 0, "ae2e_request", 1),
        ]
        proc.on_round(1, [])
        replies = proc.on_round(2, requests)
        assert replies == []  # duplicate sender evicted entirely

    def test_below_threshold_responses_insufficient(self):
        """A handful of forged answers (below the decision threshold)
        cannot make a confused processor decide."""
        params = make_params(N)
        proc = AEToEProcessor(
            pid=0, n=N, knowledgeable=False, message=None,
            k_of_loop=lambda loop: 1, params=params,
            rng=random.Random(0), loops=1,
        )
        from repro.net.messages import Message

        proc.on_round(1, [])
        proc.on_round(2, [])
        threshold = AEToEProcessor.decision_threshold(params)
        # Fewer identical answers than the threshold, from solicited
        # senders: must not decide.
        solicited = list(proc._sent_labels)[: threshold - 1]
        fake = [Message(s, 0, "ae2e_response", 99) for s in solicited]
        proc.on_round(3, fake)
        assert proc.decided is None

    def test_unsolicited_senders_ignored(self):
        """Responses from processors never asked are discarded outright."""
        params = make_params(N)
        proc = AEToEProcessor(
            pid=0, n=N, knowledgeable=False, message=None,
            k_of_loop=lambda loop: 1, params=params,
            rng=random.Random(0), loops=1,
        )
        from repro.net.messages import Message

        proc.on_round(1, [])
        proc.on_round(2, [])
        unsolicited = [
            s for s in range(1, N) if s not in proc._sent_labels
        ]
        fake = [Message(s, 0, "ae2e_response", 99) for s in unsolicited]
        proc.on_round(3, fake)
        assert proc.decided is None
