"""Tests for the terminal chart renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.asciiplot import (
    PlotError,
    Series,
    fitted_exponent,
    render_chart,
)


def sqrt_series():
    return Series("sqrt", [(n, n**0.5) for n in (10, 100, 1000, 10000)])


def square_series():
    return Series(
        "square", [(n, n**2) for n in (10, 100, 1000, 10000)], marker="#"
    )


def test_render_contains_markers_and_legend():
    chart = render_chart(
        [sqrt_series(), square_series()],
        title="scaling", x_label="n", y_label="bits",
    )
    assert "*" in chart
    assert "#" in chart
    assert "*=sqrt" in chart
    assert "#=square" in chart
    assert "scaling" in chart
    assert "x: n (log)" in chart


def test_render_dimensions():
    chart = render_chart([sqrt_series()], width=40, height=10)
    lines = chart.split("\n")
    plot_lines = [l for l in lines if "|" in l]
    assert len(plot_lines) == 10
    assert all(len(l.split("|", 1)[1]) <= 40 for l in plot_lines)


def test_linear_scale_supported():
    series = Series("lin", [(1, 1), (2, 2), (3, 3)])
    chart = render_chart([series], log_x=False, log_y=False)
    assert "*" in chart


def test_log_scale_rejects_nonpositive():
    series = Series("bad", [(0, 1), (1, 2)])
    with pytest.raises(PlotError):
        render_chart([series], log_x=True)


def test_empty_series_rejected():
    with pytest.raises(PlotError):
        Series("empty", [])
    with pytest.raises(PlotError):
        render_chart([])


def test_small_plot_area_rejected():
    with pytest.raises(PlotError):
        render_chart([sqrt_series()], width=2, height=2)


def test_marker_must_be_single_char():
    with pytest.raises(PlotError):
        Series("x", [(1, 1)], marker="**")


def test_flat_series_renders():
    series = Series("flat", [(1, 5), (10, 5), (100, 5)])
    chart = render_chart([series])
    assert "*" in chart


def test_fitted_exponent_recovers_known_slopes():
    assert fitted_exponent(
        [(n, n**0.5) for n in (10, 100, 1000)]
    ) == pytest.approx(0.5, abs=0.01)
    assert fitted_exponent(
        [(n, 7 * n**2) for n in (10, 100, 1000)]
    ) == pytest.approx(2.0, abs=0.01)


def test_fitted_exponent_validation():
    with pytest.raises(PlotError):
        fitted_exponent([(1, 1)])
    with pytest.raises(PlotError):
        fitted_exponent([(1, 1), (1, 2)])
    with pytest.raises(PlotError):
        fitted_exponent([(-1, 1), (-2, 2)])


@settings(max_examples=30, deadline=None)
@given(
    exponent=st.floats(min_value=0.1, max_value=3.0),
    scale=st.floats(min_value=0.1, max_value=100.0),
)
def test_property_exponent_fit_exact_on_power_laws(exponent, scale):
    points = [(float(n), scale * n**exponent) for n in (2, 8, 32, 128)]
    assert fitted_exponent(points) == pytest.approx(exponent, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n_points=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_render_never_crashes_on_positive_data(n_points, seed):
    import random

    rng = random.Random(seed)
    points = [
        (rng.uniform(1, 1e6), rng.uniform(1, 1e9))
        for _ in range(n_points)
    ]
    chart = render_chart([Series("r", points)])
    assert isinstance(chart, str)
    assert "|" in chart
