"""Tests for multi-valued agreement (Turpin-Coan + scalable composition)."""

from collections import Counter

import pytest

from repro.adversary.behaviors import EquivocatingBehavior, SilentBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.baselines.phase_king import run_phase_king
from repro.core.multivalued import (
    MultiValuedResult,
    run_scalable_multivalued,
    turpin_coan_reduce,
)


def phase_king_binary(n):
    """A binary-BA callable backed by Phase King."""

    def agree(binary_inputs):
        inputs = [binary_inputs.get(p, 0) for p in range(n)]
        result = run_phase_king(n, inputs)
        values = Counter(result.good_outputs().values())
        return max(values, key=lambda v: (values[v], v))

    return agree


class TestTurpinCoan:
    def test_unanimous_value_wins(self):
        n = 16
        result = turpin_coan_reduce(
            n, [42] * n, binary_agree=phase_king_binary(n)
        )
        assert result.value == 42
        assert result.unanimous()
        assert all(v == 42 for v in result.good_decided().values())

    def test_majority_value_wins_or_default(self):
        n = 16
        values = [7] * 13 + [9] * 3
        result = turpin_coan_reduce(
            n, values, binary_agree=phase_king_binary(n)
        )
        assert result.value in (7, 0)
        assert result.unanimous()

    def test_split_inputs_yield_default(self):
        n = 16
        values = [p % 4 for p in range(n)]
        result = turpin_coan_reduce(
            n, values, binary_agree=phase_king_binary(n), default=0
        )
        # No value close to unanimity -> binary agreement lands on 0.
        assert result.value == 0

    def test_under_byzantine_minority(self):
        n = 16
        adversary = StaticByzantineAdversary(
            n, targets={0, 1, 2}, behavior=EquivocatingBehavior(), seed=1
        )
        result = turpin_coan_reduce(
            n, [5] * n, binary_agree=phase_king_binary(n),
            adversary=adversary,
        )
        assert result.value == 5
        assert result.unanimous()

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            turpin_coan_reduce(
                4, [1, 2, 3, -1], binary_agree=phase_king_binary(4)
            )

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            turpin_coan_reduce(
                4, [1, 2], binary_agree=phase_king_binary(4)
            )


class TestScalableMultiValued:
    def test_unanimous_value_exact(self):
        n = 27
        result = run_scalable_multivalued(
            n, [5] * n, value_bits=3, seed=61
        )
        assert result.value == 5
        good = result.good_decided()
        assert all(v == 5 for v in good.values())

    def test_each_bit_valid(self):
        """Bitwise validity: every output bit was some good input bit."""
        n = 27
        values = [3 if p % 2 else 5 for p in range(n)]  # 011 vs 101
        result = run_scalable_multivalued(
            n, values, value_bits=3, seed=62
        )
        # bit 0 is 1 for everyone; bits 1 and 2 are split.
        assert result.value is not None
        assert result.value & 1 == 1

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_scalable_multivalued(4, [1, 2], value_bits=2)
        with pytest.raises(ValueError):
            run_scalable_multivalued(4, [1] * 4, value_bits=0)
