"""Tests for the transport-agnostic dispatch plane.

The dispatch plane's contract, pinned piece by piece:

* **DispatchPlan** is the single home of shard geometry — chunk and
  wave sizing match the backends' historical defaults exactly, and
  every plan covers each trial exactly once.
* **run_unit** is the one spawn-safe worker entry: ``trials`` units
  reproduce the serial path, ``wave`` units reproduce the async path.
* **run_units** (the collect loop) keeps lanes fed, retries failed
  units on other lanes with the failing lane excluded, raises instead
  of returning partial results, and merges in canonical trial order —
  scripted through a fake transport so every branch is deterministic.
"""

import pytest

from repro.engine import (
    AsyncBackend,
    DispatchError,
    DispatchPlan,
    EngineError,
    Envelope,
    ExperimentSpec,
    InlineTransport,
    SerialBackend,
    Transport,
    WorkUnit,
    run_unit,
    run_units,
)
from repro.engine.dispatch import MODE_TRIALS, MODE_WAVE, unit_from_wire, unit_to_wire


def _spec(runner="vss-coin", n=7, trials=4, seed=5, **params):
    return ExperimentSpec(
        runner=runner, n=n, trials=trials, seed=seed, params=params
    )


# -- plan geometry ---------------------------------------------------------------------


def test_plan_validation():
    with pytest.raises(EngineError, match="trial"):
        DispatchPlan(trials=0, unit_size=1)
    with pytest.raises(EngineError, match="unit_size"):
        DispatchPlan(trials=4, unit_size=0)
    with pytest.raises(EngineError, match="mode"):
        DispatchPlan(trials=4, unit_size=1, mode="teleport")
    with pytest.raises(EngineError, match="mode"):
        WorkUnit(spec=_spec(), indices=(0,), mode="teleport")


def test_chunked_matches_historic_process_geometry():
    # Explicit size: contiguous slices of that size.
    assert DispatchPlan.chunked(7, 3, 2).indices() == [
        [0, 1, 2], [3, 4, 5], [6]
    ]
    # Auto size: ~4 chunks per worker, floor division, minimum 1.
    assert DispatchPlan.chunked(4, None, 2).unit_size == 1
    assert DispatchPlan.chunked(64, None, 2).unit_size == 8
    for trials in (1, 2, 7, 24, 25, 100):
        for size in (None, 1, 3, 7, 200):
            plan = DispatchPlan.chunked(trials, size, 3)
            flat = [i for unit in plan.indices() for i in unit]
            assert flat == list(range(trials)), (trials, size)


def test_waved_matches_historic_hybrid_geometry():
    # Auto size: ~2 waves per worker, ceil division.
    assert DispatchPlan.waved(25, None, 3).unit_size == 5
    assert DispatchPlan.waved(1, None, 3).unit_size == 1
    plan = DispatchPlan.waved(10, 4, 2, max_live=16)
    assert plan.mode == MODE_WAVE
    assert plan.max_live == 16
    assert plan.indices() == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]


def test_legacy_geometry_helpers_are_gone():
    """The PR-3 aliases (deprecated in PR 6) are removed: geometry is
    DispatchPlan, pool lifecycle is PoolTransport.create_pool."""
    import repro.engine
    import repro.engine.backends

    for module in (repro.engine, repro.engine.backends):
        assert not hasattr(module, "chunk_indices")
        assert not hasattr(module, "make_pool")
        assert "chunk_indices" not in module.__all__
        assert "make_pool" not in module.__all__


def test_capacity_weights_scale_effective_workers():
    """``weights=`` replaces the worker count with total capacity, so a
    weight-3 host shards like three workers."""
    from repro.engine import total_capacity

    assert total_capacity([1, 1, 1]) == 3
    assert total_capacity([3, 1]) == 4
    with pytest.raises(EngineError, match=">= 1"):
        total_capacity([1, 0])
    with pytest.raises(EngineError, match="integer"):
        total_capacity([1.5])
    with pytest.raises(EngineError, match="integer"):
        total_capacity([True])
    with pytest.raises(EngineError, match="at least one"):
        total_capacity([])
    # Weighted plans match the equivalent flat worker count exactly.
    assert (
        DispatchPlan.chunked(64, None, 0, weights=[3, 1]).unit_size
        == DispatchPlan.chunked(64, None, 4).unit_size
    )
    assert (
        DispatchPlan.waved(25, None, 0, weights=[2, 1]).unit_size
        == DispatchPlan.waved(25, None, 3).unit_size
    )


def test_units_carry_spec_mode_and_reject_mismatched_trials():
    spec = _spec(trials=5)
    plan = DispatchPlan.chunked(5, 2, 2)
    units = plan.units(spec)
    assert [u.indices for u in units] == [(0, 1), (2, 3), (4,)]
    assert all(u.spec == spec and u.mode == MODE_TRIALS for u in units)
    with pytest.raises(EngineError, match="plan covers"):
        plan.units(_spec(trials=6))


# -- run_unit, the unified worker entry ------------------------------------------------


def test_run_unit_trials_mode_matches_serial_slice():
    spec = _spec(trials=5)
    serial = SerialBackend().run_trials(spec)
    unit = WorkUnit(spec=spec, indices=(1, 3), mode=MODE_TRIALS)
    assert run_unit(unit) == [serial[1], serial[3]]


def test_run_unit_wave_mode_matches_async_slice():
    spec = _spec(runner="bracha-broadcast", n=5, trials=6, seed=3)
    serial = SerialBackend().run_trials(spec)
    unit = WorkUnit(
        spec=spec, indices=(4, 1, 3), mode=MODE_WAVE, max_live=2
    )
    # Index order out, whatever order in (the wave driver's contract).
    assert run_unit(unit) == [serial[1], serial[3], serial[4]]
    assert AsyncBackend().run_trials(spec) == serial


def test_work_unit_wire_round_trip():
    spec = _spec(runner="bracha-broadcast", n=5, trials=6, seed=3)
    unit = WorkUnit(spec=spec, indices=(0, 2), mode=MODE_WAVE, max_live=8)
    assert unit_from_wire(unit_to_wire(unit)) == unit
    plain = WorkUnit(spec=_spec(), indices=(1,))
    assert unit_from_wire(unit_to_wire(plain)) == plain


# -- the collect loop, scripted --------------------------------------------------------


class ScriptedTransport(Transport):
    """Scriptable lanes: chosen (unit, lane) pairs fail, the rest run.

    ``fail`` maps ``(unit_id, lane)`` to an error string; a submitted
    unit matching an entry yields a failure envelope and kills that
    lane (what a dead worker host looks like), so retry/exclusion paths
    are exercised deterministically and in-process.
    """

    name = "scripted"

    def __init__(self, units, fail=None, lanes=("lane-a", "lane-b")):
        self._units = units
        self._lane_ids = list(lanes)
        self._busy = {lane: None for lane in self._lane_ids}
        self._dead = set()
        self.fail = dict(fail or {})
        self.submissions = []  # (unit_id, lane) in submission order

    def lanes(self):
        return tuple(
            lane for lane in self._lane_ids if lane not in self._dead
        )

    def try_submit(self, unit_id, unit, exclude=frozenset()):
        for lane in self._lane_ids:
            if lane in self._dead or lane in exclude:
                continue
            if self._busy[lane] is None:
                self._busy[lane] = (unit_id, unit)
                self.submissions.append((unit_id, lane))
                return True
        return False

    def collect(self):
        for lane in self._lane_ids:
            if self._busy[lane] is not None:
                unit_id, unit = self._busy[lane]
                self._busy[lane] = None
                key = (unit_id, lane)
                if key in self.fail:
                    # A failing lane is a dead lane, like a killed host.
                    self._dead.add(lane)
                    return Envelope(
                        unit_id=unit_id, lane=lane, error=self.fail[key]
                    )
                return Envelope(
                    unit_id=unit_id,
                    lane=lane,
                    results=tuple(run_unit(unit)),
                )
        raise AssertionError("collect() with nothing in flight")


def test_run_units_inline_matches_serial():
    spec = _spec(trials=6)
    units = DispatchPlan.chunked(6, 2, 2).units(spec)
    assert run_units(units, InlineTransport()) == (
        SerialBackend().run_trials(spec)
    )
    assert run_units([], InlineTransport()) == []


def test_run_units_retries_on_surviving_lane_with_exclusion():
    """A lane that kills a unit is excluded from the retry; the sweep
    completes on the survivor, bit-identical to serial."""
    spec = _spec(trials=6)
    units = DispatchPlan.chunked(6, 2, 2).units(spec)
    transport = ScriptedTransport(
        units, fail={(0, "lane-a"): "worker killed"}
    )
    assert run_units(units, transport) == SerialBackend().run_trials(spec)
    # Unit 0 went to lane-a first, then was retried — on lane-b only.
    retries = [lane for uid, lane in transport.submissions if uid == 0]
    assert retries[0] == "lane-a"
    assert all(lane == "lane-b" for lane in retries[1:])
    assert len(retries) >= 2


def test_run_units_raises_when_every_lane_fails_a_unit():
    spec = _spec(trials=4)
    units = DispatchPlan.chunked(4, 2, 2).units(spec)
    transport = ScriptedTransport(
        units,
        fail={(0, "lane-a"): "killed", (0, "lane-b"): "killed again"},
    )
    with pytest.raises(DispatchError, match="every dispatch lane is dead|every live lane"):
        run_units(units, transport)


def test_run_units_respects_max_attempts():
    spec = _spec(trials=2)
    units = DispatchPlan.chunked(2, 1, 2).units(spec)
    transport = ScriptedTransport(
        units, fail={(0, "lane-a"): "flaky"}, lanes=("lane-a",)
    )
    with pytest.raises(DispatchError, match="failed 1 time"):
        run_units(units, transport, max_attempts=1)


def test_run_units_rejects_wrong_trial_coverage():
    """A worker returning the wrong trials is an error, never a silent
    hole in the sweep."""
    spec = _spec(trials=4)
    units = DispatchPlan.chunked(4, 2, 2).units(spec)
    serial = SerialBackend().run_trials(spec)

    class LyingTransport(InlineTransport):
        def try_submit(self, unit_id, unit, exclude=frozenset()):
            # Every unit answers with trial 0's result only.
            self._ready.append(
                Envelope(
                    unit_id=unit_id,
                    lane="inline",
                    results=(serial[0],),
                )
            )
            return True

    with pytest.raises(DispatchError, match="exactly"):
        run_units(units, LyingTransport())


def test_inline_transport_contains_unit_crash_as_envelope():
    bad_unit = WorkUnit(
        spec=_spec(runner="vss-coin", trials=2),
        indices=(0, 1),
        mode=MODE_WAVE,  # vss-coin has no async builder -> run_unit raises
    )
    transport = InlineTransport()
    assert transport.try_submit(0, bad_unit)
    envelope = transport.collect()
    assert not envelope.ok
    assert "async" in envelope.error
    with pytest.raises(DispatchError, match="failed"):
        run_units([bad_unit], InlineTransport())
