"""The cost plane: symbolic per-trial cost models sized into dispatch.

Pinned here:

* **model fidelity** — for three exactly-deterministic scenarios
  (phase-king, rabin, unreliable-coin-ba) the symbolic bits model,
  calibrated against measured BitLedger totals at one n, predicts the
  measured totals at a *different* n within a tight tolerance band;
* **plan properties** — over random grids, costs and capacity weights,
  cost-weighted plans cover every trial exactly once and merge
  canonically (bit-identical to a bare serial loop);
* **grid parity** — the fused ``run_grid`` path of the process, hybrid
  and distributed backends equals per-spec serial execution on mixed-n
  grids, cost-aware and uniform alike;
* **fallback** — an unpriceable spec anywhere in a grid degrades the
  whole plan to uniform geometry (no predicted costs stamped);
* **wire tolerance** — ``predicted_cost`` round-trips on unit and
  report documents and is optional on old documents;
* **fleet sizing** — the coordinator persists cost-derived unit sizes
  into pending job envelopes (resume-safe), never into running ones.
"""

import random

import pytest

from repro.analysis.costmodel import (
    CostSample,
    ScenarioCostModel,
    calibrate,
    cost_model_names,
    get_cost_model,
)
from repro.engine import (
    DispatchPlan,
    Engine,
    EngineError,
    ExperimentSpec,
    HybridBackend,
    InlineTransport,
    ProcessPoolBackend,
    SerialBackend,
    WorkerServer,
    plan_grid,
    report_from_wire,
    report_to_wire,
    run_grid_units,
    run_units,
    spec_trial_cost,
)
from repro.engine.costplan import cost_sized_unit_size, grid_modes
from repro.engine.dispatch import (
    MODE_TRIALS,
    run_one_trial,
    unit_from_wire,
    unit_to_wire,
)
from repro.engine.distributed import DistributedBackend
from repro.engine.telemetry import RunTelemetry

pytestmark = pytest.mark.skipif(
    get_cost_model("phase-king") is None,
    reason="cost models need sympy",
)


def _serial(spec):
    return [run_one_trial(spec, i) for i in range(spec.trials)]


# -- model fidelity against measured ledgers -------------------------------------------


FIDELITY_CASES = [
    # (scenario, calibrate-at n, predict-at n)
    ("phase-king", 8, 16),
    ("rabin", 8, 14),
    ("unreliable-coin-ba", 16, 24),
]


@pytest.mark.parametrize("name,n_fit,n_check", FIDELITY_CASES)
def test_bits_model_calibrated_at_one_n_predicts_another(
    name, n_fit, n_check
):
    """The acceptance-criterion fidelity band: fit constants from
    measured BitLedger snapshots at one size, predict a different size
    within 5% (these scenarios are exactly deterministic, so the model
    should in fact be exact)."""
    model = get_cost_model(name)
    measured = {}
    for n in (n_fit, n_check):
        spec = ExperimentSpec(runner=name, n=n, trials=2, seed=5)
        results = SerialBackend().run_trials(spec)
        totals = {r.ledger.total_bits for r in results}
        assert len(totals) == 1  # deterministic communication pattern
        measured[n] = totals.pop()
    fitted = calibrate(
        model, [CostSample(n=n_fit, bits=measured[n_fit])]
    )
    predicted = fitted.predict(n_check).bits
    assert predicted == pytest.approx(measured[n_check], rel=0.05)


def test_bits_model_is_exact_for_deterministic_scenarios():
    for name, n, _ in FIDELITY_CASES:
        spec = ExperimentSpec(runner=name, n=n, trials=1, seed=9)
        (result,) = SerialBackend().run_trials(spec)
        predicted = get_cost_model(name).predict(n).bits
        assert predicted == result.ledger.total_bits


def test_calibrate_recovers_a_known_scale_factor():
    model = get_cost_model("phase-king")
    samples = [
        CostSample(n=n, bits=2.5 * model.predict(n).bits)
        for n in (8, 12, 16)
    ]
    fitted = calibrate(model, samples)
    assert fitted.bits_scale == pytest.approx(2.5 * model.bits_scale)
    # The seconds axis fits the work scale independently.
    timed = calibrate(
        model,
        [CostSample(n=8, seconds=3e-6 * model.predict(8).work)],
    )
    assert timed.work_scale == pytest.approx(3e-6 * model.work_scale)
    assert timed.bits_scale == model.bits_scale  # untouched axis


def test_every_builtin_scenario_has_a_cost_model():
    from repro.engine import scenario_names

    # Pinned explicitly: other test modules register throwaway
    # scenarios into the shared registry, so compare against the
    # shipped set, not whatever scenario_names() has accumulated.
    builtin = {
        "everywhere-ba",
        "unreliable-coin-ba",
        "vss-coin",
        "sampler-quality",
        "benor",
        "eig",
        "phase-king",
        "rabin",
        "cpa",
        "disc09-ae2e",
        "async-benor",
        "common-coin-ba",
        "bracha-broadcast",
        "async-sparse-aeba",
    }
    assert builtin <= set(scenario_names())
    assert set(cost_model_names()) == builtin
    for name in builtin:
        model = get_cost_model(name)
        predicted = model.predict(16)
        assert predicted.bits >= 0
        assert predicted.work > 0


def test_ignored_params_names_what_the_model_does_not_price():
    model = get_cost_model("phase-king")
    assert "corrupt" in model.ignored_params(
        ("corrupt", "num_phases")
    )
    assert "num_phases" not in model.ignored_params(
        ("corrupt", "num_phases")
    )


# -- plan properties over random grids -------------------------------------------------


def test_cost_plans_partition_random_grids_exactly_once():
    rng = random.Random(20260808)
    for _ in range(40):
        trials = rng.randint(1, 60)
        costs = [rng.uniform(0.1, 50.0) for _ in range(trials)]
        workers = rng.randint(1, 6)
        weights = (
            [rng.randint(1, 4) for _ in range(workers)]
            if rng.random() < 0.5
            else None
        )
        target = (
            rng.uniform(1.0, sum(costs)) if rng.random() < 0.5 else None
        )
        for planner in (DispatchPlan.cost_chunked, DispatchPlan.cost_waved):
            plan = planner(
                trials,
                costs,
                workers,
                weights=weights,
                target_unit_cost=target,
            )
            flat = sorted(i for group in plan.indices() for i in group)
            assert flat == list(range(trials))
            # Groups are internally sorted and ordered by first index.
            firsts = [group[0] for group in plan.indices()]
            assert firsts == sorted(firsts)
            for group in plan.indices():
                assert list(group) == sorted(group)


def test_cost_plan_rejects_bad_costs():
    with pytest.raises(EngineError, match="positive"):
        DispatchPlan.cost_chunked(3, [1.0, -1.0, 2.0], 2)
    with pytest.raises(EngineError, match="one cost per trial"):
        DispatchPlan.cost_chunked(3, [1.0, 2.0], 2)


def test_cost_weighted_units_merge_canonically():
    """Execution over a deliberately lopsided cost vector merges back
    to the exact serial result (unit order never leaks)."""
    spec = ExperimentSpec(runner="phase-king", n=6, trials=11, seed=2)
    rng = random.Random(7)
    costs = [rng.choice([1.0, 1.0, 40.0]) for _ in range(spec.trials)]
    plan = DispatchPlan.cost_chunked(spec.trials, costs, 3)
    results = run_units(plan.units(spec), InlineTransport())
    assert results == _serial(spec)
    for unit in plan.units(spec):
        assert unit.predicted_cost == pytest.approx(
            sum(costs[i] for i in unit.indices)
        )


def test_uniform_costs_degenerate_to_contiguous_chunks():
    plan = DispatchPlan.cost_chunked(12, [3.0] * 12, 3)
    for group in plan.indices():
        assert list(group) == list(range(group[0], group[-1] + 1))


# -- grid planning and backend parity --------------------------------------------------


def _mixed_sync_specs():
    return [
        ExperimentSpec(runner="phase-king", n=6, trials=7, seed=3),
        ExperimentSpec(runner="phase-king", n=12, trials=3, seed=3),
        ExperimentSpec(runner="rabin", n=8, trials=5, seed=1),
    ]


def test_plan_grid_equalises_predicted_unit_cost():
    specs = _mixed_sync_specs()
    units = plan_grid(
        specs, capacity=2, modes=[MODE_TRIALS] * len(specs)
    )
    assert sorted(
        i for u in units if u.spec == specs[0] for i in u.indices
    ) == list(range(specs[0].trials))
    costs = [u.predicted_cost for u in units]
    assert all(c is not None and c > 0 for c in costs)
    # Heaviest-first submit order (LPT across lanes).
    assert costs == sorted(costs, reverse=True)


def test_plan_grid_falls_back_to_uniform_when_any_spec_is_unpriceable():
    from repro.engine import Scenario, TrialResult, register

    def _noop(ctx):
        return TrialResult(
            trial_index=ctx.trial_index, seed=ctx.seed,
            metrics=(("one", 1.0),),
        )

    register(
        Scenario(
            name="cost-test-unpriced",
            run_trial=_noop,
            description="cost tests: a scenario with no cost model",
        )
    )
    specs = _mixed_sync_specs() + [
        ExperimentSpec(runner="cost-test-unpriced", n=1, trials=4)
    ]
    assert spec_trial_cost(specs[-1]) is None
    units = plan_grid(
        specs, capacity=2, modes=[MODE_TRIALS] * len(specs)
    )
    assert all(u.predicted_cost is None for u in units)
    # Coverage still exact per spec.
    for spec in specs:
        assert sorted(
            i for u in units if u.spec == spec for i in u.indices
        ) == list(range(spec.trials))


def test_run_grid_units_checks_per_spec_coverage():
    spec = ExperimentSpec(runner="phase-king", n=6, trials=4, seed=3)
    units = DispatchPlan.chunked(spec.trials, 2, 2).units(spec)
    with pytest.raises(EngineError, match="exactly once"):
        run_grid_units(list(units) + [units[0]], InlineTransport())


def test_process_grid_parity_cost_aware_and_uniform():
    specs = _mixed_sync_specs()
    expected = [_serial(spec) for spec in specs]
    for aware in (True, False):
        with ProcessPoolBackend(workers=2) as backend:
            assert backend.run_grid(specs, cost_aware=aware) == expected


def test_process_grid_duplicate_specs_share_results():
    specs = _mixed_sync_specs()
    doubled = [specs[0], specs[1], specs[0]]
    with ProcessPoolBackend(workers=2) as backend:
        results = backend.run_grid(doubled)
    assert results[0] == results[2] == _serial(specs[0])
    assert results[1] == _serial(specs[1])


def test_hybrid_grid_parity_on_mixed_n_async_specs():
    specs = [
        ExperimentSpec(runner="bracha-broadcast", n=4, trials=6, seed=5),
        ExperimentSpec(runner="bracha-broadcast", n=7, trials=3, seed=5),
    ]
    expected = [_serial(spec) for spec in specs]
    with HybridBackend(workers=2) as backend:
        assert backend.run_grid(specs) == expected


def test_hybrid_grid_rejects_sync_only_scenarios():
    with HybridBackend(workers=2) as backend:
        with pytest.raises(EngineError, match="async builder"):
            backend.run_grid(_mixed_sync_specs())


def test_distributed_grid_parity_mixed_modes():
    """One fused grid mixing chunk-mode and wave-mode specs over real
    loopback workers equals serial, bit for bit."""
    specs = [
        ExperimentSpec(runner="phase-king", n=6, trials=6, seed=3),
        ExperimentSpec(runner="bracha-broadcast", n=5, trials=4, seed=3),
    ]
    modes = grid_modes(specs)
    assert modes[0] == MODE_TRIALS and modes[1] != MODE_TRIALS
    expected = [_serial(spec) for spec in specs]
    servers = [WorkerServer().start(), WorkerServer().start()]
    try:
        with DistributedBackend(
            [s.address for s in servers]
        ) as backend:
            assert backend.run_grid(specs) == expected
    finally:
        for server in servers:
            server.close()


def test_engine_run_grid_wraps_results_per_spec():
    specs = _mixed_sync_specs()
    results = Engine("serial").run_grid(specs)
    assert [r.spec for r in results] == specs
    for spec, result in zip(specs, results):
        assert result.trials == _serial(spec)
        assert result.backend == "serial"


def test_cost_sized_unit_size_clamps_to_the_trial_range():
    spec = ExperimentSpec(runner="phase-king", n=8, trials=10, seed=0)
    cost = spec_trial_cost(spec)
    assert cost is not None and cost > 0
    assert cost_sized_unit_size(spec, cost * 3) == 3
    assert cost_sized_unit_size(spec, cost / 100) == 1
    assert cost_sized_unit_size(spec, cost * 1000) == spec.trials
    unpriced = ExperimentSpec(
        runner="cost-test-unpriced-absent", n=1, trials=4
    )
    assert cost_sized_unit_size(unpriced, 10.0) is None


# -- wire tolerance --------------------------------------------------------------------


def test_unit_wire_roundtrips_predicted_cost_and_tolerates_old_docs():
    spec = ExperimentSpec(runner="phase-king", n=6, trials=4, seed=3)
    (unit,) = DispatchPlan.cost_chunked(
        spec.trials, [2.0] * spec.trials, 1, target_unit_cost=100.0
    ).units(spec)
    assert unit.predicted_cost == pytest.approx(8.0)
    doc = unit_to_wire(unit)
    assert unit_from_wire(doc).predicted_cost == pytest.approx(8.0)
    del doc["predicted_cost"]  # a document from before the cost plane
    old = unit_from_wire(doc)
    assert old.predicted_cost is None
    assert old == unit  # advisory field: excluded from equality


def test_report_wire_roundtrips_lane_predicted_costs():
    spec = ExperimentSpec(runner="phase-king", n=6, trials=4, seed=3)
    plan = DispatchPlan.cost_chunked(spec.trials, [5.0] * spec.trials, 2)
    telemetry = RunTelemetry(backend="test", total_trials=spec.trials)
    results = run_units(
        plan.units(spec), InlineTransport(), telemetry=telemetry
    )
    telemetry.finish()
    report = telemetry.report(results)
    assert any(lane.predicted_costs for lane in report.lanes)
    doc = report_to_wire(report)
    decoded = report_from_wire(doc)
    assert [
        lane.predicted_costs for lane in decoded.lanes
    ] == [lane.predicted_costs for lane in report.lanes]
    for lane_doc in doc["lanes"]:
        lane_doc.pop("predicted_costs", None)  # pre-cost-plane report
    old = report_from_wire(doc)
    assert all(lane.predicted_costs == () for lane in old.lanes)


def test_lane_cost_skew_is_one_when_model_matches_clock():
    from repro.engine.telemetry import LaneReport

    lane = LaneReport(
        lane="w0",
        unit_seconds=(1.0, 2.0),
        compute_seconds=(1.0, 2.0),
        predicted_costs=(10.0, 20.0),
    )
    # Run-wide rate of 0.1 s per cost unit -> this lane is dead on.
    assert lane.cost_skew(0.1) == pytest.approx(1.0)
    empty = LaneReport(lane="w1", unit_seconds=(1.0,))
    assert empty.cost_skew(0.1) is None


# -- fleet sizing ----------------------------------------------------------------------


def test_queue_set_unit_size_only_on_pending_jobs(tmp_path):
    from repro.fleet import JobQueue

    queue = JobQueue(str(tmp_path))
    spec = ExperimentSpec(runner="phase-king", n=6, trials=8, seed=0)
    job = queue.submit(spec)
    assert queue.set_unit_size(job.job_id, 3).unit_size == 3
    assert queue.get(job.job_id).unit_size == 3  # persisted
    queue.transition(job.job_id, "running")
    with pytest.raises(EngineError, match="only pending"):
        queue.set_unit_size(job.job_id, 2)
    with pytest.raises(EngineError, match=">= 1"):
        queue.set_unit_size(job.job_id, 0)


def test_coordinator_persists_cost_sizes_before_dispatch(tmp_path):
    from repro.fleet import JobQueue
    from repro.fleet.coordinator import Coordinator

    queue = JobQueue(str(tmp_path))
    cheap = queue.submit(
        ExperimentSpec(runner="phase-king", n=6, trials=24, seed=0)
    )
    costly = queue.submit(
        ExperimentSpec(runner="phase-king", n=24, trials=6, seed=0)
    )
    pinned = queue.submit(
        ExperimentSpec(runner="phase-king", n=24, trials=6, seed=0),
        unit_size=5,
    )
    coordinator = Coordinator(str(tmp_path))
    sized = coordinator._apply_cost_sizing(
        queue.by_state("pending"), [("localhost", 7045, 2)]
    )
    by_id = {job.job_id: job for job in sized}
    assert by_id[cheap.job_id].unit_size is not None
    assert by_id[costly.job_id].unit_size is not None
    # Cheaper trials pack into bigger units than costly ones.
    assert (
        by_id[cheap.job_id].unit_size > by_id[costly.job_id].unit_size
    )
    # The sizes are durable: a resumed coordinator re-reads the same
    # geometry from the envelopes.
    assert queue.get(cheap.job_id).unit_size == by_id[cheap.job_id].unit_size
    # An explicit unit size is never overridden.
    assert by_id[pinned.job_id].unit_size == 5
