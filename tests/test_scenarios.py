"""Tests for the declarative Scenario API.

Three contracts pinned here:

* **Backend parity, registry-wide** — every registered (schema-declared)
  scenario returns bit-identical trial lists on the serial and
  process-pool backends, on the batch backend where batchable, on
  the async and hybrid backends where asynchronous (hybrid at odd wave
  sizes included: 1, 3, and larger than the trial count), and on the
  distributed backend against loopback TCP workers — wire round trip
  included.  This is the acceptance property of the scenario redesign
  and of every backend added since: execution mode is unobservable.
* **Schema validation** — unknown parameter keys are rejected with a
  did-you-mean hint, ill-typed values with the expected type, raw CLI
  strings coerce to the declared types without touching trial seeds,
  and cross-field constraints (the scenario ``check`` hook) fail at
  validation instead of deep in a builder.
* **Metric contracts** — a scenario's trials report exactly the metric
  names its registration declares, so downstream tables and sweeps can
  rely on the schema.
"""

import pytest

from repro.engine import (
    AsyncBackend,
    BatchBackend,
    Engine,
    EngineError,
    ExperimentSpec,
    HybridBackend,
    Param,
    ProcessPoolBackend,
    Scenario,
    ScenarioError,
    SerialBackend,
    TrialResult,
    get_scenario,
    make_context,
    scenario_names,
)

#: Built-in scenarios only: ad-hoc test runners (registered without a
#: schema by other test modules) are excluded by declared_only.
DECLARED = scenario_names(declared_only=True)


@pytest.fixture(scope="module")
def loopback_workers():
    """Two in-process `repro worker serve` instances on ephemeral ports."""
    from repro.engine import WorkerServer

    servers = [WorkerServer().start(), WorkerServer().start()]
    yield [server.address for server in servers]
    for server in servers:
        server.close()


def _smoke_spec(name: str, trials: int = 2, **overrides) -> ExperimentSpec:
    """The scenario's own cheap configuration, as used by CI smoke."""
    runner = get_scenario(name)
    params = dict(runner.smoke_params)
    params.update(overrides)
    return ExperimentSpec(
        runner=name, n=runner.smoke_n, trials=trials, seed=13,
        params=params,
    )


def test_registry_covers_the_protocol_stack():
    """The redesign's coverage floor: all six baselines, the paper's own
    protocols, and the async stack are reachable through the registry."""
    for name in (
        "benor", "eig", "phase-king", "rabin", "cpa", "disc09-ae2e",
        "everywhere-ba", "unreliable-coin-ba", "vss-coin",
        "sampler-quality",
        "async-benor", "bracha-broadcast", "common-coin-ba",
        "async-sparse-aeba",
    ):
        assert name in DECLARED


# -- backend parity over the whole registry ------------------------------------------


@pytest.mark.parametrize("name", DECLARED)
def test_every_scenario_bit_identical_across_backends(
    name, loopback_workers
):
    runner = get_scenario(name)
    spec = _smoke_spec(name)
    serial = SerialBackend().run_trials(spec)
    assert [t.trial_index for t in serial] == list(range(spec.trials))
    pooled = ProcessPoolBackend(workers=2, chunk_size=1).run_trials(spec)
    assert serial == pooled
    if runner.batchable:
        assert BatchBackend().run_trials(spec) == serial
    if runner.asynchronous:
        assert AsyncBackend(max_live=1).run_trials(spec) == serial
        assert AsyncBackend(max_live=64).run_trials(spec) == serial
        # Hybrid parity at odd wave sizes: 1 (one trial per worker
        # task), 3 (> n_trials here, so a single short wave), and the
        # auto default.  Wave geometry must be unobservable.
        for wave_size in (1, 3, None):
            sharded = HybridBackend(
                workers=2, wave_size=wave_size
            ).run_trials(spec)
            assert sharded == serial, f"wave_size={wave_size}"
    # Distributed parity, registry-wide: every scenario ships over the
    # wire to two TCP workers (waves for async scenarios, chunks
    # otherwise) and comes back bit-identical through the JSON
    # envelope round trip.
    from repro.engine import DistributedBackend

    with DistributedBackend(loopback_workers, unit_size=1) as dist:
        assert dist.run_trials(spec) == serial


@pytest.mark.parametrize("name", DECLARED)
def test_metric_contract_matches_schema(name):
    runner = get_scenario(name)
    trial = SerialBackend().run_trials(_smoke_spec(name, trials=1))[0]
    assert trial.ok, trial.failure
    assert tuple(sorted(trial.metric_dict())) == runner.metrics


def test_everywhere_ba_batch_bit_identical_under_corruption():
    """The acceptance criterion: full Theorem 1 runs — adaptive
    adversary included — multiplex under the batch backend with results
    bit-identical to the serial backend."""
    spec = ExperimentSpec(
        runner="everywhere-ba", n=27, trials=3, seed=5,
        params={"corrupt": 0.1},
    )
    serial = SerialBackend().run_trials(spec)
    batched = BatchBackend(max_live=2).run_trials(spec)
    assert serial == batched
    assert all(t.ok for t in serial)


def test_async_backend_falls_back_for_sync_scenarios():
    spec = _smoke_spec("vss-coin")
    assert (
        AsyncBackend().run_trials(spec)
        == SerialBackend().run_trials(spec)
    )


def test_hybrid_64_trials_bit_identical_to_serial_and_async():
    """The acceptance criterion: a paper-scale async sweep (>= 64
    trials) sharded across pool workers in waves returns metrics
    bit-identical to the serial and async backends."""
    spec = ExperimentSpec(
        runner="bracha-broadcast", n=5, trials=64, seed=17
    )
    serial = SerialBackend().run_trials(spec)
    stepped = AsyncBackend(max_live=16).run_trials(spec)
    sharded = HybridBackend(workers=2, wave_size=13).run_trials(spec)
    assert serial == stepped == sharded
    assert [t.trial_index for t in sharded] == list(range(64))
    assert all(t.ok for t in sharded)


def test_hybrid_rejects_non_async_scenarios_with_capabilities():
    """No silent serial fallback: a sync scenario on the hybrid backend
    is a misconfiguration, reported with the scenario's real backends."""
    spec = _smoke_spec("vss-coin")
    with pytest.raises(EngineError, match="hybrid"):
        HybridBackend(workers=2).run_trials(spec)
    with pytest.raises(EngineError, match="serial, process, batch"):
        HybridBackend(workers=2).run_trials(spec)
    runner = get_scenario("vss-coin")
    assert runner.capabilities == (
        "serial", "process", "batch", "distributed"
    )
    assert not runner.supports("hybrid")
    assert runner.supports("distributed")
    bracha = get_scenario("bracha-broadcast")
    assert bracha.capabilities == (
        "serial", "process", "async", "hybrid", "distributed"
    )
    assert bracha.supports("hybrid")
    assert bracha.supports("distributed")


def test_async_backend_contains_broken_construction():
    """A scenario whose async builder raises yields a failed TrialResult
    without killing the wave (mirroring the batch backend's guarantee)."""
    from repro.engine import register

    def _fragile(ctx):
        if ctx.trial_index == 1:
            raise RuntimeError(f"bad async build in trial {ctx.trial_index}")
        return get_scenario("bracha-broadcast").build_async_instance(ctx)

    register(
        Scenario(
            name="test-fragile-bracha",
            build_async_instance=_fragile,
            description="test-only: one trial's async builder raises",
        )
    )
    spec = ExperimentSpec(runner="test-fragile-bracha", n=7, trials=3, seed=2)
    serial = SerialBackend().run_trials(spec)
    stepped = AsyncBackend().run_trials(spec)
    assert serial == stepped
    assert [t.ok for t in serial] == [True, False, True]
    assert "bad async build in trial 1" in serial[1].failure


def test_async_backend_zero_step_instance_matches_serial():
    """A zero-step cap still starts processes (begin), exactly as the
    serial path's run(0) does — outputs must match bit for bit."""
    from repro.engine import AsyncInstance, register

    def _stalled(ctx):
        inner = get_scenario("bracha-broadcast").build_async_instance(ctx)
        return AsyncInstance(
            network=inner.network, max_steps=0,
            collect=inner.collect, ctx=inner.ctx,
        )

    register(
        Scenario(
            name="test-stalled-bracha",
            build_async_instance=_stalled,
            description="test-only: zero delivery steps allowed",
        )
    )
    spec = ExperimentSpec(runner="test-stalled-bracha", n=7, trials=2, seed=1)
    serial = SerialBackend().run_trials(spec)
    stepped = AsyncBackend().run_trials(spec)
    assert serial == stepped
    for trial in serial:
        assert trial.metric_dict()["steps"] == 0.0


def test_unreliable_coin_ba_corrupt_param_wires_an_adversary():
    """The once-ignored `corrupt` key now corrupts processors (and the
    corrupted count is reported as a metric)."""
    clean = SerialBackend().run_trials(_smoke_spec("unreliable-coin-ba"))
    attacked = SerialBackend().run_trials(
        _smoke_spec("unreliable-coin-ba", corrupt=0.25)
    )
    for trial in clean:
        assert trial.metric_dict()["corrupted"] == 0
    n = get_scenario("unreliable-coin-ba").smoke_n
    for trial in attacked:
        assert trial.metric_dict()["corrupted"] == int(0.25 * n)
    assert clean != attacked


# -- schema validation ---------------------------------------------------------------


def test_unknown_param_rejected_with_did_you_mean():
    runner = get_scenario("everywhere-ba")
    with pytest.raises(ScenarioError, match="did you mean 'corrupt'"):
        runner.validate({"corupt": 0.1})
    with pytest.raises(ScenarioError, match="unknown parameter"):
        runner.validate({"zzz": 1})


def test_engine_run_validates_and_coerces():
    result = Engine("serial").run(
        ExperimentSpec(
            runner="vss-coin", n=7, trials=1,
            params={"k": "7", "adversary": "crash"},
        )
    )
    assert result.spec.param_dict() == {"k": 7, "adversary": "crash"}
    with pytest.raises(ScenarioError, match="unknown parameter"):
        Engine("serial").run(
            ExperimentSpec(
                runner="vss-coin", n=7, trials=1, params={"kk": 7}
            )
        )


def test_coercion_does_not_change_results():
    """Raw CLI strings and typed values produce bit-identical trials —
    coercion is value-level; seeds never depend on parameters."""
    typed = Engine("serial").run(
        ExperimentSpec(
            runner="unreliable-coin-ba", n=24, trials=2,
            params={"num_rounds": 2, "corrupt": 0.25},
        )
    )
    raw = Engine("serial").run(
        ExperimentSpec(
            runner="unreliable-coin-ba", n=24, trials=2,
            params={"num_rounds": "2", "corrupt": "0.25"},
        )
    )
    assert typed.trials == raw.trials


def test_param_type_coercion_and_errors():
    p_int = Param("k", int, 4)
    assert p_int.coerce("12") == 12
    assert p_int.coerce(12.0) == 12
    with pytest.raises(ScenarioError, match="expects int"):
        p_int.coerce("4.5")
    with pytest.raises(ScenarioError, match="expects int"):
        p_int.coerce("nope")

    p_float = Param("eps", float, 0.1)
    assert p_float.coerce("0.25") == 0.25
    assert p_float.coerce(1) == 1.0
    with pytest.raises(ScenarioError, match="expects float"):
        p_float.coerce("big")

    p_bool = Param("flag", bool, False)
    assert p_bool.coerce("true") is True
    assert p_bool.coerce("0") is False
    with pytest.raises(ScenarioError, match="expects bool"):
        p_bool.coerce("maybe")


def test_param_choices_and_bounds():
    p = Param("mode", str, "a", choices=("a", "b"))
    assert p.coerce("b") == "b"
    with pytest.raises(ScenarioError, match="must be one of"):
        p.coerce("c")
    bounded = Param("corrupt", float, 0.0, minimum=0.0, maximum=0.5)
    assert bounded.coerce("0.5") == 0.5
    with pytest.raises(ScenarioError, match=">="):
        bounded.coerce(-0.1)
    with pytest.raises(ScenarioError, match="<="):
        bounded.coerce(0.9)


def test_scenario_without_execution_mode_rejected():
    with pytest.raises(ScenarioError, match="no execution mode"):
        Scenario(name="broken")


def test_undeclared_scenario_passes_params_through():
    runner = Scenario(
        name="test-passthrough",
        run_trial=lambda ctx: TrialResult.make(ctx, metrics={}),
    )
    assert runner.params is None
    assert runner.validate({"anything": "goes"}) == {"anything": "goes"}


def test_vss_coin_degenerate_committee_rejected():
    """`k=0` must fail the schema's minimum, not silently fall back to n."""
    with pytest.raises(ScenarioError, match=">= 1"):
        get_scenario("vss-coin").validate({"k": 0})


# -- cross-field checks (the `check` hook) --------------------------------------------


def test_check_hook_degree_must_be_below_n():
    """A degree >= n fails at validation with a schema error instead of
    a GraphError deep inside the builder."""
    for name in ("unreliable-coin-ba", "async-sparse-aeba"):
        runner = get_scenario(name)
        with pytest.raises(ScenarioError, match="degree 24 must be < n"):
            runner.validate({"degree": 24}, n=24)
        assert runner.validate({"degree": 8}, n=24)["degree"] == 8
        # Default (auto) degrees are derived from n and always legal.
        runner.validate({}, n=24)


def test_check_hook_corrupt_budget_vs_fault_bound():
    runner = get_scenario("unreliable-coin-ba")
    with pytest.raises(ScenarioError, match="fault bound"):
        runner.validate({"corrupt": 0.5}, n=24)  # 12 > b(24) = 7
    assert runner.validate({"corrupt": 0.25}, n=24) == {"corrupt": 0.25}


def test_check_hook_vss_committee_within_network():
    runner = get_scenario("vss-coin")
    with pytest.raises(ScenarioError, match="exceeds the network size"):
        runner.validate({"k": 9}, n=7)
    assert runner.validate({"k": 7}, n=7) == {"k": 7}


def test_check_hook_bracha_dealer_in_range():
    runner = get_scenario("bracha-broadcast")
    with pytest.raises(ScenarioError, match="dealer 7 out of range"):
        runner.validate({"dealer": 7}, n=7)
    # Without n, validation stays value-level (builders still guard).
    assert runner.validate({"dealer": 7})["dealer"] == 7


def test_check_hook_runs_through_engine_and_reports_scenario():
    with pytest.raises(ScenarioError, match="unreliable-coin-ba"):
        Engine("serial").run(
            ExperimentSpec(
                runner="unreliable-coin-ba", n=24, trials=1,
                params={"degree": 30},
            )
        )
    # A passing check leaves results untouched.
    ok = Engine("serial").run(
        ExperimentSpec(
            runner="unreliable-coin-ba", n=24, trials=1,
            params={"num_rounds": 1, "degree": 8},
        )
    )
    assert ok.failure_count == 0


def test_param_signature_rendering():
    assert Param("corrupt", float, 0.0).signature() == (
        "corrupt: float = 0.0"
    )
    assert Param("degree", int, None).signature() == "degree: int = auto"


# -- async backend determinism details ------------------------------------------------


def test_async_scheduler_forks_from_trial_seed():
    """Two trials of one spec see different delivery orders, and the
    same trial rebuilt twice sees the same one."""
    spec = ExperimentSpec(runner="async-benor", n=5, trials=2, seed=4)
    build = get_scenario("async-benor").build_async_instance
    once = build(make_context(spec, 0)).network.run(max_steps=10_000)
    again = build(make_context(spec, 0)).network.run(max_steps=10_000)
    assert once.steps == again.steps
    assert once.outputs == again.outputs
    other = build(make_context(spec, 1)).network.run(max_steps=10_000)
    assert (once.steps, once.outputs) != (other.steps, other.outputs)
