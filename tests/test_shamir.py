"""Unit tests for the Shamir (n, t+1) threshold scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.shamir import (
    SecretSharingError,
    ShamirScheme,
    Share,
    paper_threshold,
)


class TestSchemeConstruction:
    def test_paper_threshold_is_half(self):
        assert paper_threshold(10) == 6
        assert paper_threshold(11) == 6
        assert paper_threshold(2) == 2

    def test_rejects_zero_players(self):
        with pytest.raises(SecretSharingError):
            ShamirScheme(0, 1)

    def test_rejects_threshold_above_players(self):
        with pytest.raises(SecretSharingError):
            ShamirScheme(3, 4)

    def test_rejects_threshold_zero(self):
        with pytest.raises(SecretSharingError):
            ShamirScheme(3, 0)

    def test_rejects_field_too_small(self):
        with pytest.raises(SecretSharingError):
            ShamirScheme(300, 100, field=PrimeField(257))

    def test_share_bits_match_field(self):
        assert ShamirScheme(5, 3).share_bits() == DEFAULT_FIELD.element_bits


class TestDealReconstruct:
    def test_roundtrip(self):
        scheme = ShamirScheme(7, 4)
        rng = random.Random(11)
        shares = scheme.deal(123456, rng)
        assert len(shares) == 7
        assert scheme.reconstruct(shares[:4]) == 123456

    def test_any_threshold_subset_reconstructs(self):
        scheme = ShamirScheme(6, 3)
        rng = random.Random(12)
        shares = scheme.deal(99, rng)
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert scheme.reconstruct(list(subset)) == 99

    def test_too_few_shares_raises(self):
        scheme = ShamirScheme(5, 3)
        shares = scheme.deal(7, random.Random(0))
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(shares[:2])

    def test_conflicting_duplicate_raises(self):
        scheme = ShamirScheme(5, 3)
        shares = scheme.deal(7, random.Random(0))
        bad = [shares[0], Share(x=shares[0].x, value=shares[0].value + 1)] + shares[1:3]
        with pytest.raises(SecretSharingError):
            scheme.reconstruct(bad)

    def test_consistent_duplicates_tolerated(self):
        scheme = ShamirScheme(5, 3)
        shares = scheme.deal(7, random.Random(0))
        assert scheme.reconstruct([shares[0]] + shares[:3]) == 7

    def test_shares_below_threshold_are_uniformlike(self):
        """Statistical sanity check of the secrecy property.

        With t-1 shares, each possible share value should appear with
        roughly uniform frequency across dealings of the *same* secret.
        """
        field = PrimeField(257)
        scheme = ShamirScheme(4, 2, field=field)
        rng = random.Random(13)
        seen = set()
        for _ in range(600):
            shares = scheme.deal(42, rng)
            seen.add(shares[0].value)
        # One share of a threshold-2 scheme is uniform; over 600 draws we
        # should see a large spread of the 257 possible values.
        assert len(seen) > 150


class TestBulkPaths:
    def test_deal_many_matches_sequential_deals_bit_identically(self):
        """Bulk dealing consumes the rng stream word by word, exactly
        like dealing one word at a time — so a batched dealer and a
        sequential one, seeded alike, emit identical shares."""
        secrets = [5, 0, 123456, 7]
        bulk = ShamirScheme(7, 4).deal_many(secrets, random.Random(31))
        rng = random.Random(31)
        sequential = [ShamirScheme(7, 4).deal(s, rng) for s in secrets]
        assert bulk == sequential

    def test_deal_many_empty(self):
        assert ShamirScheme(5, 3).deal_many([], random.Random(0)) == []

    def test_reconstruct_many_matches_reconstruct_per_list(self):
        scheme = ShamirScheme(9, 5)
        rng = random.Random(37)
        secrets = [rng.randrange(DEFAULT_FIELD.modulus) for _ in range(6)]
        pools = scheme.deal_many(secrets, rng)
        # Mixed grids in one batch: different subsets per list.
        subsets = [
            pool[i % 4 : i % 4 + 5] for i, pool in enumerate(pools)
        ]
        assert scheme.reconstruct_many(subsets) == [
            scheme.reconstruct(s) for s in subsets
        ]
        assert scheme.reconstruct_many(subsets) == secrets
        assert scheme.reconstruct_many([]) == []

    def test_reconstruct_many_validates_like_reconstruct(self):
        scheme = ShamirScheme(5, 3)
        shares = scheme.deal(7, random.Random(0))
        with pytest.raises(SecretSharingError, match="need 3"):
            scheme.reconstruct_many([shares[:3], shares[:2]])
        conflicted = [
            shares[0],
            Share(x=shares[0].x, value=shares[0].value + 1),
        ] + shares[1:3]
        with pytest.raises(SecretSharingError, match="conflicting"):
            scheme.reconstruct_many([conflicted])
        # Consistent duplicates are tolerated, as in the scalar path.
        assert scheme.reconstruct_many([[shares[0]] + shares[:3]]) == [7]


class TestSequences:
    def test_deal_sequence_layout(self):
        scheme = ShamirScheme(4, 3)
        rng = random.Random(5)
        per_player = scheme.deal_sequence([10, 20, 30], rng)
        assert len(per_player) == 4
        assert all(len(vec) == 3 for vec in per_player)

    def test_reconstruct_sequence(self):
        scheme = ShamirScheme(4, 3)
        rng = random.Random(5)
        secrets = [10, 20, 30]
        per_player = scheme.deal_sequence(secrets, rng)
        assert scheme.reconstruct_sequence(per_player[:3]) == secrets

    def test_reconstruct_sequence_empty_raises(self):
        scheme = ShamirScheme(4, 3)
        with pytest.raises(SecretSharingError):
            scheme.reconstruct_sequence([])

    def test_reconstruct_sequence_ragged_raises(self):
        scheme = ShamirScheme(4, 3)
        rng = random.Random(5)
        per_player = scheme.deal_sequence([1, 2], rng)
        per_player[0] = per_player[0][:1]
        with pytest.raises(SecretSharingError):
            scheme.reconstruct_sequence(per_player)


class TestMajorityReconstruct:
    def test_majority_survives_minority_corruption(self):
        scheme = ShamirScheme(9, 5)
        rng = random.Random(21)
        shares = scheme.deal(777, rng)
        # Corrupt two shares.
        tampered = [
            Share(x=s.x, value=(s.value + 1) % scheme.field.modulus)
            if i < 2
            else s
            for i, s in enumerate(shares)
        ]
        assert scheme.reconstruct_majority(tampered) == 777

    def test_majority_too_few_raises(self):
        scheme = ShamirScheme(9, 5)
        shares = scheme.deal(777, random.Random(21))
        with pytest.raises(SecretSharingError):
            scheme.reconstruct_majority(shares[:3])


@given(
    secret=st.integers(min_value=0, max_value=DEFAULT_FIELD.modulus - 1),
    n_players=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=60)
def test_roundtrip_property(secret, n_players, seed):
    threshold = paper_threshold(n_players)
    scheme = ShamirScheme(n_players, threshold)
    rng = random.Random(seed)
    shares = scheme.deal(secret, rng)
    assert scheme.reconstruct(shares) == secret
    assert scheme.reconstruct(shares[-threshold:]) == secret
