"""Tests for Bracha reliable broadcast: validity, consistency, fault bound."""

import pytest

from repro.asynchrony import (
    RandomScheduler,
    TargetedDelayScheduler,
    bracha_fault_bound,
    run_bracha_broadcast,
)
from repro.asynchrony.scheduler import AsyncAdversary
from repro.net.messages import Message


def test_fault_bound_values():
    assert bracha_fault_bound(4) == 1
    assert bracha_fault_bound(7) == 2
    assert bracha_fault_bound(10) == 3
    assert bracha_fault_bound(1) == 0


def test_good_dealer_all_accept():
    result = run_bracha_broadcast(n=7, dealer=0, value=42)
    assert result.agreement_value() == 42
    assert result.decided_fraction() == 1.0


def test_good_dealer_under_random_scheduling():
    for seed in range(5):
        result = run_bracha_broadcast(
            n=10, dealer=3, value=7, scheduler=RandomScheduler(seed)
        )
        assert result.agreement_value() == 7


def test_delayed_dealer_still_accepted():
    result = run_bracha_broadcast(
        n=7, dealer=0, value=5,
        scheduler=TargetedDelayScheduler(victims={0}, seed=1),
    )
    assert result.agreement_value() == 5


class EquivocatingDealer(AsyncAdversary):
    """Corrupts the dealer and sends value 0 to half, 1 to the other half."""

    def __init__(self, n, dealer):
        super().__init__(n, budget=1)
        self.dealer = dealer
        self._sent = False

    def select_corruptions(self, step):
        return {self.dealer}

    def on_deliver(self, step, delivered):
        if self._sent:
            return []
        self._sent = True
        out = []
        for pid in range(self.n):
            if pid == self.dealer:
                continue
            value = 0 if pid % 2 == 0 else 1
            out.append(Message(self.dealer, pid, "initial", value))
        return out


def test_equivocating_dealer_no_disagreement():
    """A two-faced dealer may stall acceptance but never splits it."""
    for seed in range(4):
        n = 10
        result = run_bracha_broadcast(
            n=n, dealer=0, value=0,
            adversary=EquivocatingDealer(n, dealer=0),
            scheduler=RandomScheduler(seed),
        )
        accepted = {
            v for v in result.good_outputs().values() if v is not None
        }
        assert len(accepted) <= 1


class EchoForger(AsyncAdversary):
    """t corrupted processors echo/ready a value the dealer never sent."""

    def __init__(self, n, t, fake_value):
        super().__init__(n, budget=t)
        self.fake_value = fake_value
        self._fired = False

    def select_corruptions(self, step):
        return set(range(self.n - self.budget, self.n))

    def on_deliver(self, step, delivered):
        if self._fired:
            return []
        self._fired = True
        out = []
        for bad in sorted(self.corrupted):
            for pid in range(self.n):
                if pid in self.corrupted:
                    continue
                out.append(Message(bad, pid, "echo", self.fake_value))
                out.append(Message(bad, pid, "ready", self.fake_value))
        return out


def test_t_forgers_cannot_fake_acceptance():
    """t echo+ready forgeries fall short of both quorums: dealer value wins."""
    n = 10
    t = bracha_fault_bound(n)
    result = run_bracha_broadcast(
        n=n, dealer=0, value=1,
        adversary=EchoForger(n, t, fake_value=9),
    )
    accepted = {v for v in result.good_outputs().values() if v is not None}
    assert 9 not in accepted
    assert accepted == {1}


def test_dealer_value_required():
    with pytest.raises(ValueError):
        run_bracha_broadcast(n=4, dealer=0, value=None)  # type: ignore[arg-type]


def test_invalid_dealer_rejected():
    with pytest.raises(ValueError):
        run_bracha_broadcast(n=4, dealer=9, value=1)


def test_message_cost_is_quadratic():
    """Each good processor sends Theta(n) messages -> Theta(n^2) total."""
    totals = {}
    for n in (8, 16, 32):
        result = run_bracha_broadcast(n=n, dealer=0, value=1)
        totals[n] = result.ledger.total_messages()
    # Doubling n should roughly quadruple messages (ratio in [3, 5]).
    ratio1 = totals[16] / totals[8]
    ratio2 = totals[32] / totals[16]
    assert 3.0 <= ratio1 <= 5.0
    assert 3.0 <= ratio2 <= 5.0
