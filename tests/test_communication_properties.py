"""Property-based tests of the tree communication protocols.

Hypothesis drives random topologies, secrets and (bounded) corruption
sets through the sendSecretUp -> reveal cycle and checks the protocol's
two contract properties:

* fault-free reveals always learn the exact secret everywhere;
* reveals never produce a *wrong* value at a good processor — they
  either learn the secret or learn nothing (fail-safe), whatever the
  adversary does within its budget.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.communication import TreeCommunicator
from repro.crypto.field import PrimeField
from repro.net.accounting import BitLedger
from repro.topology.links import LinkStructure
from repro.topology.tree import NodeId, TreeTopology

FIELD = PrimeField((1 << 31) - 1)


def build(n, q, k1, uplink, seed):
    rng = random.Random(seed)
    tree = TreeTopology(n=n, q=q, k1=k1, rng=rng)
    links = LinkStructure(
        tree, uplink_degree=uplink, ell_link_degree=5, intra_degree=4,
        rng=rng,
    )
    comm = TreeCommunicator(
        tree, links, FIELD, BitLedger(n), rng=random.Random(seed + 1),
        threshold_fraction=1 / 3,
    )
    return tree, comm


@given(
    n=st.integers(min_value=9, max_value=40),
    owner_fraction=st.floats(min_value=0.0, max_value=0.99),
    secret=st.integers(min_value=0, max_value=FIELD.modulus - 1),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_fault_free_reveal_exact(n, owner_fraction, secret, seed):
    tree, comm = build(n, q=3, k1=5, uplink=8, seed=seed)
    owner = min(n - 1, int(owner_fraction * n))
    key = (owner, 0)
    comm.initial_share(owner, {key: secret})
    leaf = NodeId(1, owner)
    node = leaf
    comm.send_secret_up(leaf, [key], corrupted=set())
    node = tree.parent(leaf)
    outcome = comm.reveal(node, [key], corrupted=set())
    for leaf_node, values in outcome.leaf_values.items():
        assert values[key] == secret
    for member, views in outcome.node_views.items():
        assert views[key] == secret


@given(
    n=st.integers(min_value=12, max_value=36),
    secret=st.integers(min_value=0, max_value=FIELD.modulus - 1),
    corrupt_count=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_reveal_never_wrong_under_corruption(
    n, secret, corrupt_count, seed
):
    """Fail-safe on good paths (Lemma 3's precondition): while the
    owner's leaf committee keeps an honest majority, a good member's view
    is the secret or None — never a silently wrong value.

    (With a majority-bad leaf committee — a bad node per Definition 3 —
    non-verifiable sharing genuinely permits a consistent wrong value;
    the paper then counts the whole election as bad, so that case is out
    of scope here.)"""
    tree, comm = build(n, q=3, k1=5, uplink=8, seed=seed)
    owner = n - 1
    key = (owner, 0)
    comm.initial_share(owner, {key: secret})
    leaf = NodeId(1, owner)
    leaf_members = set(tree.members(leaf))
    rng = random.Random(seed ^ 0xABCDEF)
    pool = [p for p in range(n) if p not in leaf_members]
    corrupted = set(rng.sample(pool, min(corrupt_count, len(pool))))
    comm.send_secret_up(leaf, [key], corrupted=corrupted)
    node = tree.parent(leaf)
    outcome = comm.reveal(
        node, [key], corrupted=corrupted,
        bad_value_fn=lambda k, p: (secret + 17) % FIELD.modulus,
    )
    for member, views in outcome.node_views.items():
        if member in corrupted:
            continue
        # The adversary pushes secret+17 everywhere it can; a good member
        # must never adopt it.
        assert views[key] in (secret, None)


@given(
    n=st.integers(min_value=9, max_value=30),
    words=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_multiword_reveal_consistency(n, words, seed):
    """All words of a block survive the same path together."""
    tree, comm = build(n, q=3, k1=5, uplink=8, seed=seed)
    owner = 0
    rng = random.Random(seed)
    secrets = {
        (owner, w): rng.randrange(FIELD.modulus) for w in range(words)
    }
    comm.initial_share(owner, secrets)
    leaf = NodeId(1, owner)
    comm.send_secret_up(leaf, list(secrets), corrupted=set())
    node = tree.parent(leaf)
    outcome = comm.reveal(node, list(secrets), corrupted=set())
    for key, value in secrets.items():
        for leaf_node, leaf_vals in outcome.leaf_values.items():
            assert leaf_vals[key] == value


@given(
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=10, deadline=None)
def test_erasure_property(seed):
    """After sendSecretUp the child's stores hold nothing (Definition 1's
    deletion), so corrupting the child later reveals nothing."""
    tree, comm = build(18, q=3, k1=5, uplink=8, seed=seed)
    owner = 7
    key = (owner, 0)
    comm.initial_share(owner, {key: 12345})
    leaf = NodeId(1, owner)
    comm.send_secret_up(leaf, [key], corrupted=set())
    for member in tree.members(leaf):
        assert comm.records_at(leaf, member, key) == []
    assert not comm.adversary_can_reconstruct(
        key, set(tree.members(leaf)) - set(tree.members(tree.parent(leaf)))
    )
