"""Tests for Berlekamp-Welch Reed-Solomon decoding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, PrimeField
from repro.crypto.polynomial import evaluate, random_polynomial
from repro.crypto.reed_solomon import (
    berlekamp_welch,
    decode_constant,
    _poly_divmod,
    _solve_linear_system,
)

FIELD = PrimeField(257)


def noisy_points(secret, degree_bound, m, wrong, seed):
    rng = random.Random(seed)
    poly = random_polynomial(FIELD, secret, degree_bound - 1, rng)
    points = [(x, evaluate(FIELD, poly, x)) for x in range(1, m + 1)]
    for i in rng.sample(range(m), wrong):
        x, y = points[i]
        points[i] = (x, (y + 1 + rng.randrange(200)) % FIELD.modulus)
    return points, poly


class TestLinearSolver:
    def test_unique_solution(self):
        # x + y = 3; x - y = 1 (mod 257) -> x=2, y=1
        sol = _solve_linear_system(FIELD, [[1, 1], [1, 256]], [3, 1])
        assert sol == [2, 1]

    def test_inconsistent(self):
        sol = _solve_linear_system(FIELD, [[1, 1], [1, 1]], [1, 2])
        assert sol is None

    def test_underdetermined_free_vars_zero(self):
        sol = _solve_linear_system(FIELD, [[1, 1]], [5])
        assert sol is not None
        assert (sol[0] + sol[1]) % 257 == 5


class TestPolyDivmod:
    def test_exact_division(self):
        # (x+1)(x+2) = x^2 + 3x + 2
        q, r = _poly_divmod(FIELD, [2, 3, 1], [1, 1])
        assert r == []
        assert q == [2, 1]

    def test_with_remainder(self):
        q, r = _poly_divmod(FIELD, [1, 0, 1], [1, 1])  # x^2+1 / x+1
        assert r == [2]

    def test_zero_denominator_raises(self):
        from repro.crypto.field import FieldError

        with pytest.raises(FieldError):
            _poly_divmod(FIELD, [1, 2], [0])


class TestBerlekampWelch:
    def test_no_errors(self):
        points, poly = noisy_points(42, 4, 8, 0, 1)
        decoded = berlekamp_welch(FIELD, points, 4)
        assert decoded[: len(poly)] == poly

    def test_max_errors_corrected(self):
        # m=12, t=4 -> radius e=4
        points, poly = noisy_points(99, 4, 12, 4, 2)
        assert decode_constant(FIELD, points, 4) == 99

    def test_beyond_radius_fails_or_truth(self):
        points, poly = noisy_points(7, 4, 10, 5, 3)  # radius is 3
        result = decode_constant(FIELD, points, 4)
        assert result in (None, 7)

    def test_insufficient_points(self):
        points, _ = noisy_points(5, 6, 4, 0, 4)
        assert berlekamp_welch(FIELD, points, 6) is None

    def test_every_error_count_up_to_radius(self):
        for wrong in range(0, 5):
            points, _ = noisy_points(123, 5, 13, wrong, 10 + wrong)
            assert decode_constant(FIELD, points, 5) == 123

    def test_explicit_error_cap(self):
        points, _ = noisy_points(55, 3, 9, 1, 5)
        assert decode_constant(FIELD, points, 3, max_errors=1) == 55

    def test_large_field(self):
        from repro.crypto.field import MERSENNE_61

        field = PrimeField(MERSENNE_61)
        rng = random.Random(6)
        poly = random_polynomial(field, 2**60, 4, rng)
        points = [(x, evaluate(field, poly, x)) for x in range(1, 12)]
        points[0] = (points[0][0], points[0][1] ^ 1)
        assert decode_constant(field, points, 5) == 2**60

    def test_default_field_roundtrip(self):
        rng = random.Random(7)
        poly = random_polynomial(DEFAULT_FIELD, 2**30, 3, rng)
        points = [
            (x, evaluate(DEFAULT_FIELD, poly, x)) for x in range(1, 10)
        ]
        points[3] = (points[3][0], (points[3][1] + 5) % DEFAULT_FIELD.modulus)
        assert decode_constant(DEFAULT_FIELD, points, 4) == 2**30


@given(
    secret=st.integers(min_value=0, max_value=256),
    m=st.integers(min_value=6, max_value=14),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=40, deadline=None)
def test_decoding_within_radius_property(secret, m, seed):
    degree_bound = 3
    radius = (m - degree_bound) // 2
    rng = random.Random(seed)
    wrong = rng.randint(0, radius)
    points, _ = noisy_points(secret, degree_bound, m, wrong, seed)
    assert decode_constant(FIELD, points, degree_bound) == secret
