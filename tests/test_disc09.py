"""Tests for the DISC'09 predecessor amplifier and its adaptive kill."""

import pytest

from repro.baselines.disc09_ae2e import (
    AssignmentTargetingAdversary,
    assignment,
    disc09_fanout,
    run_disc09_ae2e,
)
from repro.core.ae_to_everywhere import run_ae_to_everywhere
from repro.core.parameters import ProtocolParameters

N = 100
MESSAGE = 6


def knowledgeable_set(n=N, exclude=()):
    count = int(0.7 * n)
    return set(p for p in range(n) if p not in exclude)


class TestAssignment:
    def test_fixed_and_deterministic(self):
        a = assignment(50, seed=1, fanout=5)
        b = assignment(50, seed=1, fanout=5)
        assert a == b

    def test_fanout_respected(self):
        table = assignment(50, seed=2, fanout=7)
        assert all(len(v) == 7 for v in table.values())

    def test_fanout_scales_with_log(self):
        assert disc09_fanout(1 << 20) > disc09_fanout(1 << 6)


class TestNonAdaptiveSuccess:
    def test_fault_free_decides_everyone(self):
        knowledgeable = set(range(70))
        result = run_disc09_ae2e(N, knowledgeable, MESSAGE, seed=3)
        undecided = [
            p for p, v in result.outputs.items() if v != MESSAGE
        ]
        # Pseudo-random assignment: all but a couple of unlucky receivers
        # hear enough copies.
        assert len(undecided) <= N // 10

    def test_cheap(self):
        knowledgeable = set(range(70))
        result = run_disc09_ae2e(N, knowledgeable, MESSAGE, seed=4)
        # O~(sqrt n)-ish per processor: far below one all-to-all round.
        assert result.ledger.max_bits_per_processor() < N * 30


class TestAdaptiveKill:
    """The measured difference between [16] and the paper's Section 4."""

    def make_attack(self, seed=5):
        fanout = disc09_fanout(N, 6.0)
        table = assignment(N, seed, fanout)
        corrupted_budget = N // 4
        knowledgeable = set(range(70))
        victims = [99, 98, 97, 96, 95]
        adversary = AssignmentTargetingAdversary(
            N,
            budget=corrupted_budget,
            table=table,
            knowledgeable=knowledgeable,
            victims=victims,
            fake_message=MESSAGE + 1,
        )
        return knowledgeable, victims, adversary, seed

    def test_victims_fail_or_decide_wrong(self):
        knowledgeable, victims, adversary, seed = self.make_attack()
        result = run_disc09_ae2e(
            N, knowledgeable - adversary.select_corruptions(1), MESSAGE,
            adversary=adversary, seed=seed, a=6.0,
        )
        # Re-run corruption selection happened inside run; check victims.
        harmed = sum(
            1
            for v in victims
            if result.outputs.get(v) != MESSAGE
        )
        assert harmed >= 1  # the fixed pattern lets the adversary isolate

    def test_algorithm3_survives_same_budget(self):
        """Algorithm 3 with private channels + post-hoc label choice is
        immune to the same style of targeting (the adversary cannot know
        which requests matter before k is drawn)."""
        params = ProtocolParameters.simulation(N)
        corrupted = set(range(25))
        knowledgeable = set(range(25, 95))
        from repro.core.ae_to_everywhere import FakeResponderAdversary

        adversary = FakeResponderAdversary(
            N, targets=corrupted, fake_message=MESSAGE + 1, seed=6
        )
        result = run_ae_to_everywhere(
            params, knowledgeable, MESSAGE,
            k_sequence=[2, 7, 4, 9], adversary=adversary, seed=7,
        )
        assert result.no_bad_decision(MESSAGE)
        assert result.undecided_count() == 0
