"""Tests for bivariate verifiable secret sharing (the VSS ablation)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bivariate import BivariateRow, BivariateScheme
from repro.crypto.field import SMALL_PRIME, PrimeField
from repro.crypto.shamir import SecretSharingError, ShamirScheme


def scheme(n=7, threshold=4):
    return BivariateScheme(n_players=n, threshold=threshold)


def test_deal_reconstruct_roundtrip():
    s = scheme()
    rng = random.Random(1)
    rows = s.deal(12345, rng)
    assert s.reconstruct(rows) == 12345
    assert s.reconstruct(rows[: s.threshold]) == 12345


def test_any_threshold_subset_reconstructs():
    s = scheme(n=6, threshold=3)
    rows = s.deal(777, random.Random(2))
    import itertools

    for subset in itertools.combinations(rows, 3):
        assert s.reconstruct(list(subset)) == 777


def test_below_threshold_rejected():
    s = scheme()
    rows = s.deal(5, random.Random(3))
    with pytest.raises(SecretSharingError):
        s.reconstruct(rows[: s.threshold - 1])


def test_honest_dealing_fully_cross_consistent():
    s = scheme(n=8, threshold=4)
    rows = s.deal(42, random.Random(4))
    assert s.verify_dealing(rows) == []
    for row in rows:
        assert s.row_degree_ok(row)


def test_symmetry_of_rows():
    s = scheme(n=5, threshold=3)
    rows = s.deal(9, random.Random(5))
    for a in rows:
        for b in rows:
            assert a.at(b.x) == b.at(a.x)


def test_tampered_row_detected_by_cross_check():
    s = scheme(n=7, threshold=4)
    rows = s.deal(100, random.Random(6))
    bad = rows[2]
    tampered = BivariateRow(
        x=bad.x,
        values=tuple(
            v + 1 if i == 5 else v for i, v in enumerate(bad.values)
        ),
    )
    rows[2] = tampered
    bad_pairs = s.verify_dealing(rows)
    assert any(tampered.x in pair for pair in bad_pairs)


def test_reconstruct_with_complaints_drops_forged_row():
    s = scheme(n=9, threshold=4)
    rows = s.deal(4242, random.Random(7))
    forged = BivariateRow(
        x=rows[0].x, values=tuple(v ^ 1 for v in rows[0].values)
    )
    rows[0] = forged
    secret, discarded = s.reconstruct_with_complaints(rows)
    assert secret == 4242
    assert discarded == {forged.x}


def test_reconstruct_with_complaints_needs_enough_honest_rows():
    s = scheme(n=4, threshold=4)
    rows = s.deal(1, random.Random(8))
    forged = [
        BivariateRow(x=r.x, values=tuple(v ^ 1 for v in r.values))
        for r in rows[:3]
    ]
    with pytest.raises(SecretSharingError):
        s.reconstruct_with_complaints(forged + rows[3:])


def test_effective_shamir_shares_interoperate():
    """Rows collapse to plain Shamir shares reconstructable by ShamirScheme."""
    n, threshold = 7, 4
    s = scheme(n, threshold)
    rows = s.deal(2024, random.Random(9))
    shamir = ShamirScheme(n_players=n, threshold=threshold)
    shares = [row.shamir_share() for row in rows]
    assert shamir.reconstruct(shares[:threshold]) == 2024


def test_row_degree_check_catches_high_degree():
    s = scheme(n=7, threshold=3)
    rows = s.deal(3, random.Random(10))
    # Corrupt one evaluation: the row no longer matches a degree-2 curve.
    bad = BivariateRow(
        x=rows[0].x,
        values=tuple(
            v + 7 if i == len(rows[0].values) - 1 else v
            for i, v in enumerate(rows[0].values)
        ),
    )
    assert not s.row_degree_ok(bad)


def test_deal_many_matches_sequential_deals_bit_identically():
    """Bulk dealing samples each dealing's coefficients in order from
    the shared rng — identical to sequential deals, share for share."""
    secrets = [3, 99, 0]
    s = scheme(n=7, threshold=3)
    bulk = s.deal_many(secrets, random.Random(23))
    rng = random.Random(23)
    sequential = [s.deal(secret, rng) for secret in secrets]
    assert bulk == sequential
    assert s.deal_many([], random.Random(23)) == []


def test_rows_degree_ok_matches_per_row_checks():
    s = scheme(n=7, threshold=3)
    rows = s.deal(3, random.Random(10))
    bad = BivariateRow(
        x=rows[2].x,
        values=tuple(
            v + 7 if i == len(rows[2].values) - 1 else v
            for i, v in enumerate(rows[2].values)
        ),
    )
    mixed = rows[:2] + [bad] + rows[3:]
    assert s.rows_degree_ok(mixed) == [
        s.row_degree_ok(row) for row in mixed
    ]
    assert s.rows_degree_ok(mixed)[2] is False
    assert s.rows_degree_ok([]) == []


def test_parameter_validation():
    with pytest.raises(SecretSharingError):
        BivariateScheme(n_players=0, threshold=1)
    with pytest.raises(SecretSharingError):
        BivariateScheme(n_players=5, threshold=6)
    with pytest.raises(SecretSharingError):
        BivariateScheme(
            n_players=300, threshold=3, field=PrimeField(SMALL_PRIME)
        )


def test_row_point_bounds():
    s = scheme(n=4, threshold=2)
    rows = s.deal(11, random.Random(11))
    with pytest.raises(SecretSharingError):
        rows[0].at(99)


def test_accounting_overheads():
    s = scheme(n=10, threshold=6)
    assert s.row_bits() == 11 * s.field.element_bits
    assert s.verification_messages() == 90
    assert s.overhead_vs_shamir() == pytest.approx(11.0)


@settings(max_examples=25, deadline=None)
@given(
    secret=st.integers(min_value=0, max_value=2**31 - 2),
    seed=st.integers(min_value=0, max_value=2**20),
    n=st.integers(min_value=3, max_value=9),
)
def test_property_roundtrip_and_consistency(secret, seed, n):
    threshold = n // 2 + 1
    s = BivariateScheme(n_players=n, threshold=threshold)
    rows = s.deal(secret, random.Random(seed))
    assert s.verify_dealing(rows) == []
    assert s.reconstruct(rows) == secret


@settings(max_examples=25, deadline=None)
@given(
    secret=st.integers(min_value=0, max_value=2**31 - 2),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_property_threshold_minus_one_rows_hide_secret(secret, seed):
    """t rows of two different secrets are identically distributed.

    Sanity proxy for perfect secrecy: with the same RNG draw order, the
    sub-threshold projection of a dealing of ``secret`` and a dealing of
    ``secret + 1`` must both pass all consistency checks — nothing in t
    rows pins down F(0,0).  (Full distributional equality is a theorem;
    we verify the checkable consequences.)
    """
    n, threshold = 7, 4
    s = BivariateScheme(n_players=n, threshold=threshold)
    rows_a = s.deal(secret, random.Random(seed))[: threshold - 1]
    rows_b = s.deal((secret + 1) % s.field.modulus, random.Random(seed))[
        : threshold - 1
    ]
    for rows in (rows_a, rows_b):
        for i, left in enumerate(rows):
            for right in rows[i + 1:]:
                assert left.at(right.x) == right.at(left.x)
