"""Tests for dealer-free triple generation (GRR degree reduction)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import SecretSharingError, ShamirScheme
from repro.mpc import secure_multiply
from repro.mpc.triples import (
    check_reduction_compatible,
    degree_reduce_product,
    distributed_random_sharing,
    generate_triple_distributed,
    triple_generation_bits,
    triple_scheme,
)


def test_triple_scheme_thresholds():
    s = triple_scheme(7)
    assert s.n_players == 7
    assert s.threshold == 3  # t = 2, n >= 2t+1 = 5
    check_reduction_compatible(s)


def test_reduction_incompatible_scheme_rejected():
    s = ShamirScheme(n_players=6, threshold=4)  # t = 3, needs n >= 7
    with pytest.raises(SecretSharingError):
        check_reduction_compatible(s)


def test_distributed_random_sharing_reconstructs_to_sum():
    s = triple_scheme(7)
    rng = random.Random(1)
    contributions = [10, 20, 30, 40, 50, 60, 70]
    shares = distributed_random_sharing(s, rng, contributions)
    total = s.reconstruct(shares[: s.threshold])
    assert total == sum(contributions) % s.field.modulus


def test_distributed_random_sharing_contribution_count_checked():
    s = triple_scheme(7)
    with pytest.raises(SecretSharingError):
        distributed_random_sharing(s, random.Random(2), [1, 2])


def test_fixed_minority_contributions_cannot_predict_sum():
    """An adversary fixing t contributions still faces a uniform sum."""
    s = triple_scheme(7)
    sums = set()
    for seed in range(6):
        rng = random.Random(seed)
        fld = s.field
        contributions = [0, 0] + [
            fld.random_element(rng) for _ in range(5)
        ]
        shares = distributed_random_sharing(s, rng, contributions)
        sums.add(s.reconstruct(shares[: s.threshold]))
    assert len(sums) >= 5  # honest randomness dominates


def test_degree_reduction_gives_product():
    s = triple_scheme(7)
    rng = random.Random(3)
    a, b = 1234, 5678
    a_shares = s.deal(a, rng)
    b_shares = s.deal(b, rng)
    c_shares = degree_reduce_product(a_shares, b_shares, s, rng)
    c = s.reconstruct(c_shares[: s.threshold])
    assert c == (a * b) % s.field.modulus


def test_degree_reduction_alignment_checked():
    s = triple_scheme(7)
    rng = random.Random(4)
    a_shares = s.deal(1, rng)
    b_shares = list(reversed(s.deal(2, rng)))
    with pytest.raises(SecretSharingError):
        degree_reduce_product(a_shares, b_shares, s, rng)


def test_distributed_triple_is_consistent():
    s = triple_scheme(10)
    rng = random.Random(5)
    triple = generate_triple_distributed(s, rng)
    a = s.reconstruct(list(triple.a)[: s.threshold])
    b = s.reconstruct(list(triple.b)[: s.threshold])
    c = s.reconstruct(list(triple.c)[: s.threshold])
    assert c == s.field.mul(a, b)


def test_distributed_triple_drives_secure_multiply():
    """End to end: dealer-free triples power the same online protocol."""
    s = triple_scheme(7)
    rng = random.Random(6)
    x, y = 111, 222
    x_shares = s.deal(x, rng)
    y_shares = s.deal(y, rng)
    triple = generate_triple_distributed(s, rng)
    z_shares = secure_multiply(x_shares, y_shares, triple, s)
    assert s.reconstruct(z_shares[: s.threshold]) == x * y


def test_triple_generation_cost():
    s = triple_scheme(8)
    assert triple_generation_bits(s) == 3 * 64 * s.field.element_bits


@settings(max_examples=20, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=2**31 - 2),
    y=st.integers(min_value=0, max_value=2**31 - 2),
    seed=st.integers(min_value=0, max_value=2**16),
    k=st.integers(min_value=4, max_value=10),
)
def test_property_distributed_triples_correct(x, y, seed, k):
    s = triple_scheme(k)
    rng = random.Random(seed)
    x_shares = s.deal(x, rng)
    y_shares = s.deal(y, rng)
    triple = generate_triple_distributed(s, rng)
    z_shares = secure_multiply(x_shares, y_shares, triple, s)
    assert (
        s.reconstruct(z_shares[: s.threshold])
        == (x * y) % s.field.modulus
    )
