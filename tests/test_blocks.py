"""Unit tests for candidate arrays and blocks (Definition 4)."""

import random

import pytest

from repro.core.blocks import (
    Block,
    CandidateArray,
    generate_adversarial_array,
    generate_array,
)
from repro.core.parameters import ProtocolParameters
from repro.crypto.field import PrimeField

FIELD = PrimeField(257)


def params():
    return ProtocolParameters(n=81, q=3, winners_per_election=2)


class TestBlock:
    def test_words_layout(self):
        block = Block(bin_choice=2, coin_words=(5, 6, 7))
        assert block.words() == [2, 5, 6, 7]
        assert block.n_words == 4


class TestGenerateArray:
    def test_block_per_level(self):
        rng = random.Random(1)
        array = generate_array(0, params(), [2, 3], FIELD, rng)
        assert set(array.blocks) == {2, 3}

    def test_block_sizes_match_candidates(self):
        p = params()
        rng = random.Random(2)
        array = generate_array(0, p, [2, 3], FIELD, rng)
        assert len(array.blocks[2].coin_words) == p.candidates_per_election(2)
        assert len(array.blocks[3].coin_words) == p.candidates_per_election(3)

    def test_bin_choice_in_range(self):
        p = params()
        for seed in range(20):
            array = generate_array(0, p, [2, 3], FIELD, random.Random(seed))
            for level, block in array.blocks.items():
                assert 0 <= block.bin_choice < p.num_bins(level)

    def test_final_and_output_words(self):
        array = generate_array(
            0, params(), [2], FIELD, random.Random(3),
            final_words=2, output_words=3,
        )
        assert len(array.final_block) == 2
        assert len(array.output_block) == 3

    def test_all_words_flattening(self):
        p = params()
        array = generate_array(
            0, p, [2, 3], FIELD, random.Random(4), final_words=2,
            output_words=1,
        )
        expected = (
            p.block_words(2) + p.block_words(3) + 2 + 1
        )
        assert array.n_words() == expected

    def test_deterministic_per_seed(self):
        a = generate_array(0, params(), [2], FIELD, random.Random(5))
        b = generate_array(0, params(), [2], FIELD, random.Random(5))
        assert a.all_words() == b.all_words()

    def test_distinct_across_owners_seeds(self):
        a = generate_array(0, params(), [2], FIELD, random.Random(6))
        b = generate_array(1, params(), [2], FIELD, random.Random(7))
        assert a.all_words() != b.all_words()


class TestAdversarialArray:
    def test_hooks_drive_contents(self):
        p = params()
        array = generate_adversarial_array(
            3, p, [2, 3],
            bin_choice_fn=lambda level, owner, bins: 0,
            coin_word_fn=lambda level, owner, index: 7,
            final_words=2,
        )
        assert array.blocks[2].bin_choice == 0
        assert all(w == 7 for w in array.blocks[2].coin_words)
        assert array.final_block == (7, 7)

    def test_bin_choice_reduced_mod_bins(self):
        p = params()
        array = generate_adversarial_array(
            3, p, [2],
            bin_choice_fn=lambda level, owner, bins: 10**9,
            coin_word_fn=lambda level, owner, index: 0,
        )
        assert 0 <= array.blocks[2].bin_choice < p.num_bins(2)
