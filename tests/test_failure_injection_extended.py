"""Failure injection across the extension subsystems.

Companion to test_failure_injection.py (which covers the synchronous
simulator contract): malformed payloads, floods, crashes and lying
reveals thrown at the asynchronous engine, the synchronizer, the MPC
layer, CPA, and the VSS coin.
"""

import random

import pytest

from repro.asynchrony import (
    NullAsyncAdversary,
    RandomScheduler,
    run_bracha_broadcast,
    run_common_coin_ba,
)
from repro.asynchrony.scheduler import AsyncAdversary
from repro.asynchrony.synchronizer import run_synchronized
from repro.baselines.cpa import run_cpa
from repro.mpc import secure_weighted_sum
from repro.net.messages import Message
from repro.net.simulator import Adversary, NullAdversary, SyncNetwork


# -- async engine under hostile input ----------------------------------------------------


class GarbageFlooder(AsyncAdversary):
    """Corrupts one process and floods structurally invalid payloads."""

    def __init__(self, n, garbage_per_step=5):
        super().__init__(n, budget=1)
        self.garbage_per_step = garbage_per_step
        self._steps = 0

    def select_corruptions(self, step):
        return {self.n - 1}

    def on_deliver(self, step, delivered):
        self._steps += 1
        if self._steps > 200:
            return []
        bad = self.n - 1
        out = []
        for i in range(self.garbage_per_step):
            target = (step + i) % (self.n - 1)
            payload = [
                None, (1,), (1, 2, 3, 4), ("x", "y"), -7,
            ][i % 5]
            out.append(Message(bad, target, "report", payload))
            out.append(Message(bad, target, "echo", payload))
            out.append(Message(bad, target, "decided", payload))
        return out


def test_common_coin_ba_survives_garbage_flood():
    """Flooding slows delivery (each step delivers one message, and the
    queue fills with garbage) but cannot corrupt the outcome — raise the
    step cap and every good process still decides the valid bit."""
    n = 6
    inputs = [1] * n
    result = run_common_coin_ba(
        n, inputs, adversary=GarbageFlooder(n),
        scheduler=RandomScheduler(3), max_steps=100_000,
    )
    good = result.good_outputs()
    assert all(v == 1 for v in good.values() if v is not None)
    decided = [v for v in good.values() if v is not None]
    assert len(decided) == n - 1  # every good process decided


def test_bracha_survives_garbage_flood():
    n = 7
    result = run_bracha_broadcast(
        n=n, dealer=0, value=9, adversary=GarbageFlooder(n),
        scheduler=RandomScheduler(4), max_steps=100_000,
    )
    accepted = {v for v in result.good_outputs().values() if v is not None}
    assert accepted == {9}


def test_flood_does_not_charge_good_ledger():
    n = 6
    result = run_common_coin_ba(
        n, [1] * n, adversary=GarbageFlooder(n),
    )
    assert result.ledger.bits_sent_by(n - 1) == 0


# -- synchronizer under crashes ----------------------------------------------------------


class AsyncCrash(AsyncAdversary):
    """Corrupts t processes at start; they never send anything."""

    def __init__(self, n, t):
        super().__init__(n, budget=t)

    def select_corruptions(self, step):
        return set(range(self.n - self.budget, self.n))

    def on_deliver(self, step, delivered):
        return []


def test_synchronizer_progresses_past_crashed_members():
    from repro.net.simulator import ProcessorProtocol

    n, rounds = 7, 4
    t = 2  # within the n/3 marker allowance

    class Counter(ProcessorProtocol):
        def __init__(self, pid):
            super().__init__(pid)
            self._decided = None

        def on_round(self, round_no, inbox):
            if round_no >= rounds:
                self._decided = round_no
            return [
                Message(self.pid, peer, "tick", round_no)
                for peer in range(n)
                if peer != self.pid
            ]

        def output(self):
            return self._decided

    protocols = [Counter(pid) for pid in range(n)]
    result, wrappers = run_synchronized(
        protocols, max_rounds=rounds + 1,
        adversary=AsyncCrash(n, t),
    )
    good = result.good_outputs()
    assert all(v == rounds for v in good.values())


# -- MPC reveal tampering ------------------------------------------------------------------


def test_tampered_reveal_flips_naive_reconstruction():
    inputs = [10, 20, 30]
    honest = secure_weighted_sum(inputs, [1, 1, 1], 7, seed=5)
    tampered = secure_weighted_sum(
        inputs, [1, 1, 1], 7, seed=5, tampered_shares={0: 12345}
    )
    assert honest.result == 60
    assert tampered.result != 60  # share 0 is inside the naive window


def test_robust_reconstruction_survives_minority_tampering():
    """reconstruct_majority slides threshold windows over the sorted
    share row, so it corrects tampering that leaves a majority of clean
    windows (here: the two edge shares of 9)."""
    inputs = [10, 20, 30]
    transcript = secure_weighted_sum(
        inputs, [1, 1, 1], 9, seed=6, robust=True,
        tampered_shares={0: 999, 8: 777},
    )
    assert transcript.result == 60


def test_robust_equals_naive_when_honest():
    inputs = [4, 5, 6]
    naive = secure_weighted_sum(inputs, [2, 2, 2], 7, seed=7)
    robust = secure_weighted_sum(inputs, [2, 2, 2], 7, seed=7, robust=True)
    assert naive.result == robust.result == 30


# -- CPA with a corrupt (equivocating) dealer ----------------------------------------------


class TwoFacedDealer(Adversary):
    """Corrupts the dealer; tells half its neighbors 0, the others 1.

    CPA guarantees consistency only for a *good* dealer — a corrupt
    dealer splits its direct neighbors, and the relay quorum then
    propagates whichever face dominates locally.  The test documents
    that acceptance never invents a third value.
    """

    def __init__(self, adjacency, dealer):
        super().__init__(len(adjacency), budget=1)
        self.adjacency = adjacency
        self.dealer = dealer
        self._acted = False

    def select_corruptions(self, round_no):
        return {self.dealer} if round_no == 1 else set()

    def act(self, view):
        if self._acted:
            return []
        self._acted = True
        out = []
        for i, peer in enumerate(sorted(self.adjacency[self.dealer])):
            out.append(Message(self.dealer, peer, "cpa", i % 2))
        return out


def test_cpa_corrupt_dealer_cannot_invent_values():
    n = 60
    outcome = run_cpa(
        n=n, dealer=0, value=1, seed=9,
        adversary_factory=lambda adj: TwoFacedDealer(adj, dealer=0),
    )
    # Acceptance may split 0/1 (dealer is corrupt) but stays within the
    # dealt faces; accounting remains consistent.
    good = outcome.n - len(outcome.corrupted)
    assert (
        outcome.accepted_correct
        + outcome.accepted_wrong
        + outcome.unreached
        == good
    )


# -- VSS coin with malformed dealings -------------------------------------------------------


class MalformedDealer(Adversary):
    """A corrupted committee member deals rows of the wrong length."""

    def __init__(self, k):
        super().__init__(k, budget=1)
        self.k = k
        self._acted = False

    def select_corruptions(self, round_no):
        return {0} if round_no == 1 else set()

    def act(self, view):
        if self._acted:
            return []
        self._acted = True
        return [
            Message(0, member, "row", (0, (1, 2, 3)))  # wrong length
            for member in range(1, self.k)
        ]


def test_vss_coin_rejects_malformed_rows():
    from repro.core.vss_coin import VSSCoinMember

    k = 7
    members = [VSSCoinMember(pid, k, seed=10) for pid in range(k)]
    SyncNetwork(members, MalformedDealer(k)).run(max_rounds=5)
    good = [m for m in members if m.pid != 0]
    coins = {m.output() for m in good}
    assert len(coins) == 1
    for m in good:
        assert 0 not in m.qualified  # malformed dealing disqualified


class TestReplicatedLogUnderFlood:
    """The model allows corrupted processors to send any number of
    messages; the log layer must shrug off junk floods in both the
    Algorithm 5 and Algorithm 3 phases of every slot."""

    def test_flooded_log_still_commits(self):
        from repro.adversary.adaptive import TournamentAdversary
        from repro.core.repeated_agreement import run_replicated_log

        n = 27
        adversary = TournamentAdversary(n, budget=2, seed=41)
        adversary.take_over([5, 6])
        result = run_replicated_log(
            n,
            [[1] * n, [0] * n],
            tournament_adversary=adversary,
            flood_factor=40,
            seed=41,
        )
        assert result.success()
        assert result.bits() == [1, 0]
        assert result.all_valid()

    def test_flood_does_not_inflate_good_accounting(self):
        from repro.adversary.adaptive import TournamentAdversary
        from repro.core.repeated_agreement import run_replicated_log

        n = 27
        quiet = run_replicated_log(
            n,
            [[1] * n],
            tournament_adversary=TournamentAdversary(n, budget=0),
            seed=43,
        )
        noisy_adversary = TournamentAdversary(n, budget=2, seed=43)
        noisy_adversary.take_over([5, 6])
        noisy = run_replicated_log(
            n,
            [[1] * n],
            tournament_adversary=noisy_adversary,
            flood_factor=40,
            seed=43,
        )
        # Good processors' slot cost must not scale with the flood.
        assert noisy.slot_max_bits(0) < 3 * quiet.slot_max_bits(0)
