"""Tests for the round synchronizer (sync protocols on the async engine)."""

import pytest

from repro.asynchrony import RandomScheduler, TargetedDelayScheduler
from repro.asynchrony.synchronizer import (
    SynchronizedProcess,
    run_synchronized,
    synchronizer_fault_bound,
    synchronizer_overhead_messages,
)
from repro.baselines.phase_king import (
    PhaseKingProcessor,
    phase_king_fault_bound,
)
from repro.net.messages import Message
from repro.net.simulator import ProcessorProtocol


class CountdownProtocol(ProcessorProtocol):
    """Trivial synchronous protocol: decide after ``rounds`` rounds,
    recording what it saw each round (to verify round semantics)."""

    def __init__(self, pid, n, rounds):
        super().__init__(pid)
        self.n = n
        self.rounds = rounds
        self.seen = {}
        self._decided = None

    def on_round(self, round_no, inbox):
        self.seen[round_no] = sorted(
            (m.sender, m.payload) for m in inbox
        )
        if round_no >= self.rounds:
            self._decided = round_no
            return []
        return [
            Message(self.pid, peer, "ping", round_no)
            for peer in range(self.n)
            if peer != self.pid
        ]

    def output(self):
        return self._decided


def make_phase_king(n, inputs):
    phases = phase_king_fault_bound(n) + 1
    return [
        PhaseKingProcessor(pid, n, inputs[pid], num_phases=phases)
        for pid in range(n)
    ]


def test_fault_bound():
    assert synchronizer_fault_bound(7) == 2
    assert synchronizer_fault_bound(3) == 0


def test_round_semantics_match_synchrony():
    """With a full quorum (fault_bound=0) every round-r message lands in
    the round-(r+1) inbox, exactly as in SyncNetwork."""
    n, rounds = 5, 4
    protocols = [CountdownProtocol(pid, n, rounds) for pid in range(n)]
    result, wrappers = run_synchronized(
        protocols, max_rounds=rounds + 1, fault_bound=0
    )
    assert all(v == rounds for v in result.good_outputs().values())
    for protocol in protocols:
        assert protocol.seen[1] == []
        for r in range(2, rounds + 1):
            senders = [s for s, _ in protocol.seen[r]]
            payloads = {p for _, p in protocol.seen[r]}
            assert len(senders) == n - 1
            assert payloads == {r - 1}


def test_round_semantics_under_random_scheduling():
    n, rounds = 4, 3
    for seed in range(4):
        protocols = [CountdownProtocol(pid, n, rounds) for pid in range(n)]
        result, _ = run_synchronized(
            protocols, max_rounds=rounds + 1,
            scheduler=RandomScheduler(seed), fault_bound=0,
        )
        assert all(v == rounds for v in result.good_outputs().values())
        for protocol in protocols:
            for r in range(2, rounds + 1):
                assert {p for _, p in protocol.seen[r]} == {r - 1}


def test_default_quorum_misses_at_most_t_per_round():
    """With the n-t quorum, a round inbox may lack up to t peers' traffic
    — the documented staleness trade for liveness under faults."""
    n, rounds = 5, 4
    t = synchronizer_fault_bound(n)
    protocols = [CountdownProtocol(pid, n, rounds) for pid in range(n)]
    result, _ = run_synchronized(protocols, max_rounds=rounds + 1)
    assert all(v == rounds for v in result.good_outputs().values())
    for protocol in protocols:
        for r in range(2, rounds + 1):
            senders = [s for s, _ in protocol.seen[r]]
            assert len(senders) >= n - 1 - t
            assert {p for _, p in protocol.seen[r]} <= {r - 1}


def test_phase_king_over_async_network():
    """The O(n^2) deterministic baseline survives asynchrony when
    synchronized: agreement and validity hold under random schedules."""
    n = 8
    inputs = [1] * n
    phases = phase_king_fault_bound(n) + 1
    for seed in range(3):
        protocols = make_phase_king(n, inputs)
        result, _ = run_synchronized(
            protocols, max_rounds=2 * phases + 2,
            scheduler=RandomScheduler(seed),
        )
        assert result.agreement_value() == 1


def test_phase_king_split_inputs_agree_with_full_quorum():
    """With fault_bound=0 the synchronizer is lossless and Phase King's
    synchronous agreement proof carries over verbatim."""
    n = 8
    inputs = [i % 2 for i in range(n)]
    phases = phase_king_fault_bound(n) + 1
    for seed in range(3):
        protocols = make_phase_king(n, inputs)
        result, _ = run_synchronized(
            protocols, max_rounds=2 * phases + 2,
            scheduler=RandomScheduler(seed), fault_bound=0,
        )
        assert result.agreement_value() in (0, 1)


def test_lossy_quorum_can_break_full_information_protocols():
    """The documented synchronizer limitation, observed: with the n-t
    quorum, different processors miss different senders each round —
    violating Phase King's all-messages-arrive precondition, which can
    split agreement on adversarially split inputs.  (This is the classic
    reason synchronizers do not preserve Byzantine fault tolerance, and
    part of why the paper's asynchronous adaptation is open.)
    """
    n = 8
    inputs = [i % 2 for i in range(n)]
    phases = phase_king_fault_bound(n) + 1
    split_seen = False
    for seed in range(10):
        protocols = make_phase_king(n, inputs)
        result, _ = run_synchronized(
            protocols, max_rounds=2 * phases + 2,
            scheduler=RandomScheduler(seed),
        )
        outputs = {
            v for v in result.good_outputs().values() if v is not None
        }
        assert outputs <= {0, 1}  # outputs are always valid bits
        if len(outputs) > 1:
            split_seen = True
    assert split_seen


def test_starvation_tolerated():
    n, rounds = 5, 3
    protocols = [CountdownProtocol(pid, n, rounds) for pid in range(n)]
    result, _ = run_synchronized(
        protocols, max_rounds=rounds + 1,
        scheduler=TargetedDelayScheduler(victims={2}, seed=1),
    )
    assert all(v == rounds for v in result.good_outputs().values())


def test_wrapper_validates_pid():
    with pytest.raises(ValueError):
        SynchronizedProcess(
            0, 3, CountdownProtocol(1, 3, 2), max_rounds=4
        )


def test_overhead_accounting():
    assert synchronizer_overhead_messages(10, 5) == 450
    # The measured marker traffic matches the formula.
    n, rounds = 5, 3
    protocols = [CountdownProtocol(pid, n, rounds) for pid in range(n)]
    result, wrappers = run_synchronized(protocols, max_rounds=rounds)
    simulated = max(w.rounds_simulated for w in wrappers)
    expected_min = n * (n - 1)  # at least one full round of envelopes
    assert result.ledger.total_messages() >= expected_min
    assert simulated <= rounds


def test_rounds_do_not_exceed_cap():
    n = 4
    protocols = [CountdownProtocol(pid, n, 10) for pid in range(n)]
    result, wrappers = run_synchronized(protocols, max_rounds=3)
    # Cap reached before decision: nobody decided, simulation stopped.
    assert all(w.rounds_simulated <= 3 for w in wrappers)


def test_sparse_peers_envelopes_only_to_neighbors():
    """With peer sets, envelopes travel only along edges."""
    n, rounds = 6, 3
    ring = {pid: [(pid - 1) % n, (pid + 1) % n] for pid in range(n)}

    class RingCounter(ProcessorProtocol):
        def __init__(self, pid):
            super().__init__(pid)
            self._decided = None

        def on_round(self, round_no, inbox):
            if round_no >= rounds:
                self._decided = round_no
            return [
                Message(self.pid, peer, "tick", round_no)
                for peer in ring[self.pid]
            ]

        def output(self):
            return self._decided

    protocols = [RingCounter(pid) for pid in range(n)]
    result, wrappers = run_synchronized(
        protocols, max_rounds=rounds + 1,
        peers_of=ring, fault_bound=0,
    )
    assert all(v == rounds for v in result.good_outputs().values())
    # Each wrapper sends 2 envelopes per round: far below n - 1.
    per_proc = result.ledger.total_messages() / n
    assert per_proc <= 2 * (rounds + 2)


def test_wrapped_protocol_cannot_address_non_peer():
    n = 4

    class Wild(ProcessorProtocol):
        def on_round(self, round_no, inbox):
            return [Message(self.pid, (self.pid + 2) % n, "x", 1)]

        def output(self):
            return None

    ring = {pid: [(pid - 1) % n, (pid + 1) % n] for pid in range(n)}
    protocols = [Wild(pid) for pid in range(n)]
    with pytest.raises(ValueError):
        run_synchronized(
            protocols, max_rounds=3, peers_of=ring, fault_bound=0
        )
