"""Unit tests for polynomial evaluation and Lagrange interpolation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, FieldError, PrimeField
from repro.crypto.polynomial import (
    evaluate,
    evaluate_many,
    interpolate_constant,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at,
    random_polynomial,
)

FIELD = PrimeField(257)


class TestEvaluate:
    def test_constant(self):
        assert evaluate(FIELD, [42], 100) == 42

    def test_linear(self):
        # 3 + 2x at x=5 -> 13
        assert evaluate(FIELD, [3, 2], 5) == 13

    def test_quadratic_wraps(self):
        # x^2 at x=16 -> 256
        assert evaluate(FIELD, [0, 0, 1], 16) == 256
        assert evaluate(FIELD, [0, 0, 1], 17) == 289 % 257

    def test_empty_polynomial_is_zero(self):
        assert evaluate(FIELD, [], 5) == 0

    def test_evaluate_many(self):
        assert evaluate_many(FIELD, [1, 1], [0, 1, 2]) == [1, 2, 3]


class TestRandomPolynomial:
    def test_constant_term_is_secret(self):
        rng = random.Random(1)
        poly = random_polynomial(FIELD, 77, 4, rng)
        assert poly[0] == 77
        assert len(poly) == 5

    def test_degree_zero(self):
        rng = random.Random(1)
        assert random_polynomial(FIELD, 5, 0, rng) == [5]

    def test_negative_degree_raises(self):
        with pytest.raises(FieldError):
            random_polynomial(FIELD, 5, -1, random.Random(1))


class TestInterpolation:
    def test_roundtrip_random_polynomials(self):
        rng = random.Random(3)
        for degree in range(5):
            poly = random_polynomial(FIELD, rng.randrange(257), degree, rng)
            points = [(x, evaluate(FIELD, poly, x)) for x in range(1, degree + 2)]
            assert interpolate_constant(FIELD, points) == poly[0]

    def test_interpolate_at_arbitrary_point(self):
        rng = random.Random(4)
        poly = random_polynomial(FIELD, 9, 3, rng)
        points = [(x, evaluate(FIELD, poly, x)) for x in (1, 2, 3, 4)]
        assert lagrange_interpolate_at(FIELD, points, 10) == evaluate(
            FIELD, poly, 10
        )

    def test_duplicate_x_rejected(self):
        with pytest.raises(FieldError):
            interpolate_constant(FIELD, [(1, 2), (1, 3)])

    def test_lagrange_coefficients(self):
        rng = random.Random(5)
        poly = random_polynomial(FIELD, 123, 2, rng)
        xs = [1, 5, 9]
        ys = [evaluate(FIELD, poly, x) for x in xs]
        lambdas = lagrange_coefficients_at_zero(FIELD, xs)
        secret = FIELD.sum(FIELD.mul(l, y) for l, y in zip(lambdas, ys))
        assert secret == 123

    def test_lagrange_coefficients_duplicate_x(self):
        with pytest.raises(FieldError):
            lagrange_coefficients_at_zero(FIELD, [1, 1])


@given(
    secret=st.integers(min_value=0, max_value=DEFAULT_FIELD.modulus - 1),
    degree=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50)
def test_interpolation_recovers_any_secret(secret, degree, seed):
    rng = random.Random(seed)
    poly = random_polynomial(DEFAULT_FIELD, secret, degree, rng)
    points = [
        (x, evaluate(DEFAULT_FIELD, poly, x)) for x in range(1, degree + 2)
    ]
    assert interpolate_constant(DEFAULT_FIELD, points) == secret
