#!/usr/bin/env python
"""Private aggregation: the paper's MPC open problem, composed end to end.

The conclusion asks whether the paper's ideas enable scalable secure
multi-party computation.  This example runs the composition the library
supports:

1. **Universe reduction** (abstract / Section 3.5 coins): the tournament
   generates public random words; every processor derives the same small
   committee from them.
2. **Secure aggregation** (repro.mpc): n data owners deal Shamir shares
   of private sensor readings to the committee; the committee computes
   the *sum* by local share arithmetic and opens only the result.
3. **Beaver multiplication**: the committee also computes a private
   second moment (sum of squares) to derive the variance — one Beaver
   triple per reading.

No reading is ever reconstructed; each owner sends O(committee) field
elements, far below sqrt(n) for polylog committees — the "scalable" in
the open problem.

Run:  python examples/private_aggregation.py
"""

import random
import statistics

from repro.core.universe_reduction import run_universe_reduction
from repro.crypto.shamir import ShamirScheme
from repro.mpc import (
    generate_triple,
    secure_multiply,
    secure_sum,
)


def main():
    n = 27
    rng = random.Random(42)
    readings = [rng.randrange(10, 40) for _ in range(n)]  # private!

    print(f"Private aggregation over n = {n} data owners")
    print(f"(readings kept secret; true mean = "
          f"{statistics.mean(readings):.2f}, "
          f"true variance = {statistics.pvariance(readings):.2f})\n")

    print("1) Universe reduction selects the committee")
    committee = run_universe_reduction(n, committee_size=9, seed=5)
    print(f"   committee          : {committee.committee}")
    print(f"   agreement fraction : {committee.agreement_fraction:.0%}")
    print(f"   representative     : "
          f"{committee.representative(slack=0.1)}\n")

    k = len(committee.committee)
    print(f"2) Secure sum on the {k}-member committee")
    transcript = secure_sum(readings, committee_size=k, seed=7)
    mean = transcript.result / n
    print(f"   revealed           : only the sum = {transcript.result}")
    print(f"   mean (public math) : {mean:.2f}")
    print(f"   bits per owner     : {transcript.bits_per_input_owner}")
    print(f"   shares dealt       : {transcript.dealt_shares}, "
          f"opened: {transcript.revealed_shares}\n")

    print("3) Private variance via Beaver-triple squares")
    scheme = ShamirScheme(n_players=k, threshold=k // 2 + 1)
    deal_rng = random.Random(11)
    fld = scheme.field
    acc = None
    for reading in readings:
        shares = scheme.deal(reading, deal_rng)
        triple = generate_triple(scheme, deal_rng)
        squared = secure_multiply(shares, shares, triple, scheme)
        if acc is None:
            acc = squared
        else:
            acc = [
                type(a)(x=a.x, value=fld.add(a.value, s.value))
                for a, s in zip(acc, squared)
            ]
    sum_sq = scheme.reconstruct(acc[: scheme.threshold])
    variance = sum_sq / n - mean**2
    print(f"   revealed           : only sum of squares = {sum_sq}")
    print(f"   variance           : {variance:.2f}")
    print(f"   triples consumed   : {n} (one per multiplication)\n")

    print("Individual readings were never opened; the committee only "
          "published the two aggregates.")


if __name__ == "__main__":
    main()
