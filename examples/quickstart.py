#!/usr/bin/env python
"""Quickstart: everywhere Byzantine agreement in O~(sqrt(n)) bits/processor.

Runs the full Theorem 1 pipeline (Algorithm 2's tournament, the Section
3.5 coin subsequence, and Algorithm 3's push-to-everywhere) on a small
network, fault-free and against a full-strength adaptive adversary, and
prints what the paper's abstract promises: agreement, validity, polylog
rounds, and sub-quadratic per-processor bit counts.

Run:  python examples/quickstart.py
"""

import math

from repro import run_everywhere_ba
from repro.adversary.adaptive import BinStuffingAdversary
from repro.core.parameters import ProtocolParameters


def report(label, result):
    n = len(result.bits_per_processor)
    good = [p for p in range(n) if p not in result.corrupted]
    decided = [result.ae2e_result.decided[p] for p in good]
    agree = sum(1 for v in decided if v == result.bit)
    print(f"--- {label} ---")
    print(f"  agreed bit        : {result.bit}")
    print(f"  validity          : {result.is_valid()}")
    print(f"  good agreeing     : {agree}/{len(good)}")
    print(f"  coin words good   : {result.coin.good_fraction():.0%}")
    print(f"  total rounds      : {result.total_rounds()}")
    max_bits = result.max_bits_per_processor()
    print(f"  max bits/processor: {max_bits:,}")
    print(f"  (n^2 would be     : {n * n:,} messages of all-to-all)")
    print()


def main():
    n = 27
    inputs = [1 if p % 3 else 0 for p in range(n)]

    print(f"Everywhere Byzantine agreement, n = {n}")
    print(f"inputs: {sum(inputs)} ones, {n - sum(inputs)} zeros\n")

    result = run_everywhere_ba(n, inputs, seed=7)
    report("fault-free", result)

    params = ProtocolParameters.simulation(n)
    budget = max(1, int(0.10 * n))
    adversary = BinStuffingAdversary(n, budget=budget, seed=13)
    result = run_everywhere_ba(
        n, inputs, tournament_adversary=adversary, seed=7
    )
    report(f"adaptive adversary ({budget} corruptions)", result)


if __name__ == "__main__":
    main()
