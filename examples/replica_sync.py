#!/usr/bin/env python
"""Scenario: synchronizing a large replica set (the OceanStore problem).

The paper opens with systems researchers lamenting that "Byzantine
agreement requires a number of messages quadratic in the number of
participants, so it is infeasible for use in synchronizing a large number
of replicas" [Pond/OceanStore].  This example plays that scenario: a
replicated store must agree whether to commit a batch, some replicas are
Byzantine, and we compare the measured per-replica traffic of

* the classic quadratic baseline (Phase King), and
* this paper's scalable protocol,

at increasing replica counts — reproducing the crossover that motivates
the whole line of work.

Run:  python examples/replica_sync.py
"""

from repro import run_everywhere_ba
from repro.adversary.adaptive import BinStuffingAdversary
from repro.adversary.behaviors import EquivocatingBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.baselines.phase_king import run_phase_king


def commit_with_phase_king(n, votes, faulty):
    adversary = StaticByzantineAdversary(
        n, targets=faulty, behavior=EquivocatingBehavior(), seed=1
    )
    result = run_phase_king(n, votes, adversary=adversary)
    good = result.good_outputs()
    bit = next(iter(good.values()))
    return bit, result.ledger.max_bits_per_processor(
        include=[p for p in range(n) if p not in result.corrupted]
    )


def commit_with_scalable_ba(n, votes, budget):
    adversary = BinStuffingAdversary(n, budget=budget, seed=1)
    result = run_everywhere_ba(
        n, votes, tournament_adversary=adversary, seed=3
    )
    return result.bit, result.max_bits_per_processor()


def main():
    print("replica-set commit: quadratic baseline vs scalable BA")
    print(f"{'n':>5} {'phase-king bits':>16} {'scalable bits':>14} {'pk growth':>10}")
    last_pk = None
    for n in (27, 54):
        faulty = set(range(max(1, n // 10)))
        votes = [1] * n  # every good replica wants to commit
        pk_bit, pk_bits = commit_with_phase_king(n, votes, faulty)
        ba_bit, ba_bits = commit_with_scalable_ba(n, votes, len(faulty))
        assert pk_bit == 1 and ba_bit == 1, "commit must go through"
        growth = f"{pk_bits / last_pk:.1f}x" if last_pk else "-"
        last_pk = pk_bits
        print(f"{n:>5} {pk_bits:>16,} {ba_bits:>14,} {growth:>10}")
    print()
    print("At toy sizes Phase King is cheaper — but watch its growth: ~4x")
    print("bits for 2x replicas (the n^2 wall the paper's intro quotes).")
    print("The scalable protocol's constants are big while its curve is")
    print("~sqrt(n); the model-level crossover (n ~ 659 vs Phase King) is")
    print("located in benchmarks/bench_e12_baseline_crossover.py.")


if __name__ == "__main__":
    main()
