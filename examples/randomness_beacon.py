#!/usr/bin/env python
"""Scenario: a distributed randomness beacon from elected arrays.

Section 3.5 extends the tournament so that, beyond agreeing on a bit, the
network emits a *global coin subsequence*: a string of words, most of
them uniformly random and agreed upon almost everywhere, generated while
an adaptive adversary watches and corrupts.  That object is exactly a
randomness beacon — the primitive blockchains later rebuilt on VRFs
(the Algorand lineage cites this paper).

This example runs the tournament with output words enabled, applies a
bin-stuffing adversary, and audits the resulting beacon: how many words
are genuinely random, how widely each is agreed, and what the adversary's
words look like.

Run:  python examples/randomness_beacon.py
"""

from repro.adversary.adaptive import BinStuffingAdversary
from repro.core.almost_everywhere import run_almost_everywhere_ba
from repro.core.global_coin import GlobalCoinSubsequence
from repro.core.parameters import ProtocolParameters


def main():
    n = 27
    params = ProtocolParameters.simulation(n)
    budget = max(1, int(0.10 * n))
    adversary = BinStuffingAdversary(n, budget=budget, seed=17)

    result = run_almost_everywhere_ba(
        n,
        inputs=[0] * n,
        adversary=adversary,
        params=params,
        seed=23,
        output_words=2,
    )
    beacon = GlobalCoinSubsequence(
        views=result.output_views,
        truth=result.output_truth,
        corrupted=result.corrupted,
    )

    print(f"beacon length        : {beacon.length} words")
    print(f"genuinely random     : {len(beacon.good_indices())} "
          f"({beacon.good_fraction():.0%}; Lemma 6 promises ~2/3+)")
    print()
    print(f"{'idx':>4} {'random?':>8} {'agreed word':>20} {'agreement':>10}")
    for index in range(beacon.length):
        word = beacon.agreed_word(index)
        shown = f"{word:x}" if word is not None else "-"
        random_flag = "yes" if beacon.truth[index] is not None else "ADV"
        print(
            f"{index:>4} {random_flag:>8} {shown:>20} "
            f"{beacon.agreement_fraction(index):>9.0%}"
        )
    print()
    bits = beacon.bit_sequence()
    print(f"coin bits            : {''.join(str(b) for b in bits)}")
    ks = beacon.k_sequence(params.sqrt_n())
    print(f"Algorithm 3 labels   : {ks} (range 1..{params.sqrt_n()})")


if __name__ == "__main__":
    main()
