#!/usr/bin/env python
"""Scenario: committing an ordered log of operations, one tournament total.

The intro's replication complaint — "Byzantine agreement requires a
number of messages quadratic in the number of participants, so it is
infeasible for use in synchronizing a large number of replicas" [22] —
is about logs: replicas agree once per slot, forever.  The expensive
phase of this paper's pipeline (the Algorithm 2 tournament) does not
depend on the slot's proposals, so one tournament's coin subsequence
(§3.5) funds every future slot; each slot then costs only a sparse-graph
agreement (Algorithm 5) plus the everywhere push (Algorithm 3).

Run:  python examples/ordered_log.py
"""

from repro.adversary.adaptive import TournamentAdversary
from repro.core.repeated_agreement import run_replicated_log


def main():
    n = 27
    budget = max(1, n // 10)

    # Four log slots: two unanimous ops, one contested, one unanimous.
    slots = [
        [1] * n,                      # slot 0: "apply checkpoint"  (all yes)
        [0] * n,                      # slot 1: "rotate keys"       (all no)
        [p % 2 for p in range(n)],    # slot 2: contested proposal
        [1] * n,                      # slot 3: "compact segment"   (all yes)
    ]

    print(f"replica set of {n}, adaptive adversary holding {budget},")
    print(f"{len(slots)} log slots to commit\n")

    adversary = TournamentAdversary(n, budget=budget, seed=81)
    result = run_replicated_log(
        n, slots, tournament_adversary=adversary, seed=82
    )

    print("committed log:")
    for slot in result.slots:
        agreement = slot.aeba.agreement_fraction()
        print(
            f"  slot {slot.index}: bit {slot.bit}  "
            f"(a.e. agreement {agreement:.0%}, "
            f"everywhere: {slot.success(result.corrupted)})"
        )
    print()
    print(f"every slot decided everywhere : {result.success()}")
    print(f"every slot valid              : {result.all_valid()}")
    print()

    tournament = result.tournament_max_bits()
    marginal = max(
        result.slot_max_bits(i) for i in range(len(result.slots))
    )
    print(f"tournament (paid once)        : {tournament:>12,} bits/proc")
    print(f"marginal cost per slot        : {marginal:>12,} bits/proc")
    print(f"amortized over {len(slots)} slots       : "
          f"{result.amortized_max_bits_per_slot():>12,.0f} bits/proc/slot")
    print()
    print("The tournament is input-independent: its coin subsequence is")
    print("banked randomness, and each further agreement only pays the")
    print("sparse-graph + sqrt(n) marginal price.")


if __name__ == "__main__":
    main()
