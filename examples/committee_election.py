#!/usr/bin/env python
"""Scenario: electing a governance committee in an open network.

Universe reduction (the abstract's companion result): a large
permissionless network wants a small committee to run expensive
subprotocols (audits, checkpoint signing) on everyone's behalf.  Electing
members directly is fatal against an adaptive adversary — it corrupts the
winners.  Instead the network runs the tournament, derives public random
words from the elected *arrays* (whose creators have already erased
them), and samples the committee from those words after the fact.

Run:  python examples/committee_election.py
"""

from repro.adversary.adaptive import BinStuffingAdversary
from repro.core.universe_reduction import run_universe_reduction


def main():
    n = 27
    committee_size = 6
    budget = max(1, n // 10)

    print(f"open network of {n} processors, adversary holds {budget}")
    print(f"target committee size: {committee_size}\n")

    adversary = BinStuffingAdversary(n, budget=budget, seed=41)
    result = run_universe_reduction(
        n,
        committee_size=committee_size,
        adversary=adversary,
        seed=43,
    )

    print(f"elected committee      : {result.committee}")
    print(f"coin words consumed    : {result.coin_words_used}")
    print(f"agreed by good procs   : {result.agreement_fraction:.0%}")
    print(f"bad in population      : {result.bad_fraction_population:.0%}")
    print(f"bad in committee       : {result.bad_fraction_committee:.0%}")
    print(
        "representative (10% slack):",
        result.representative(slack=0.10),
    )
    print()
    print("The adversary saw every election and could corrupt any owner —")
    print("but the committee came from randomness committed before any")
    print("winner was known, so takeovers bought it nothing.")


if __name__ == "__main__":
    main()
