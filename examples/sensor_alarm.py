#!/usr/bin/env python
"""Scenario: alarm agreement in a compromised sensor network.

The paper cites secure sensor networks [23] as a motivating domain: many
cheap nodes, some physically captured by an attacker, must agree whether
an intrusion happened while spending as little radio bandwidth as
possible.  This example runs the paper's sparse-graph agreement engine
(Algorithm 5 / Theorem 5) directly: each sensor talks only to k*log n
neighbors, captured sensors vote adversarially, and the shared coin
drives everyone to one alarm decision.

Run:  python examples/sensor_alarm.py
"""

import random

from repro.adversary.behaviors import AntiMajorityBehavior
from repro.adversary.static import StaticByzantineAdversary
from repro.core.coins import perfect_coin_source, unreliable_coin_source
from repro.core.unreliable_coin_ba import run_unreliable_coin_ba
from repro.topology.sparse_graph import theorem5_degree


def main():
    n = 200
    rng = random.Random(99)

    # 60% of good sensors detected the intruder; the rest missed it.
    inputs = [1 if rng.random() < 0.6 else 0 for _ in range(n)]

    # The attacker captured 15% of the field and votes to maximise
    # confusion (rushing anti-majority).
    captured = set(rng.sample(range(n), int(0.15 * n)))
    adversary = StaticByzantineAdversary(
        n, targets=captured, behavior=AntiMajorityBehavior(), seed=5
    )

    # A beacon provides shared randomness, but it is jammed part of the
    # time: only some rounds deliver a clean global coin (Theorem 3's
    # (s, t) model).
    coin = unreliable_coin_source(
        n,
        num_rounds=12,
        good_round_indices=[2, 5, 8, 11],
        confused_fraction=0.05,
        rng=rng,
    )

    result = run_unreliable_coin_ba(
        n, inputs, coin, adversary=adversary, seed=6
    )

    degree = theorem5_degree(n)
    good = [p for p in range(n) if p not in captured]
    agreeing = max(
        sum(1 for p in good if result.votes[p] == b) for b in (0, 1)
    )
    print(f"sensors                : {n}")
    print(f"captured by attacker   : {len(captured)}")
    print(f"radio degree (k log n) : {degree}")
    print(f"clean beacon rounds    : {coin.num_good_rounds()}/{coin.num_rounds}")
    print(f"alarm decision         : {result.agreed_bit()}")
    print(f"sensors in agreement   : {agreeing}/{len(good)} "
          f"({result.agreement_fraction():.1%})")
    print(f"max bits per sensor    : {result.max_bits_per_processor:,}")
    print(f"(all-to-all would cost : {(n - 1) * 49 * coin.num_rounds:,} bits per sensor)")


if __name__ == "__main__":
    main()
