#!/usr/bin/env python
"""Asynchronous agreement: the paper's open problem, explored.

King & Saia close with: "Can we adapt our results to the asynchronous
communication model?"  This example runs the asynchronous substrate the
library provides for studying that question:

1. Bracha reliable broadcast — the standard async primitive, already
   Theta(n^2) messages for a single broadcast.
2. Ben-Or agreement with *local* coins — safe, but slow on split inputs.
3. The same skeleton with a *common* coin — fast, which is exactly what
   the paper's global coin subsequence provides in the synchronous
   world.  Generating such a coin asynchronously in o(n^2) bits is the
   open problem.

Run:  python examples/async_agreement.py
"""

from repro.asynchrony import (
    RandomScheduler,
    SeededCoinOracle,
    TargetedDelayScheduler,
    run_async_benor,
    run_bracha_broadcast,
    run_common_coin_ba,
)


def main():
    n = 8
    print(f"Asynchronous model, n = {n}\n")

    print("1) Bracha reliable broadcast (dealer 0 sends 42)")
    result = run_bracha_broadcast(n=n, dealer=0, value=42)
    print(f"   accepted value : {result.agreement_value()}")
    print(f"   messages       : {result.ledger.total_messages()}"
          f"  (n^2 = {n * n})")
    print(f"   deliveries     : {result.steps}\n")

    inputs = [i % 2 for i in range(n)]
    print(f"2) Ben-Or with local coins, split inputs {inputs}")
    benor = run_async_benor(n, inputs, seed=4,
                            scheduler=RandomScheduler(4))
    print(f"   agreed value   : {benor.agreement_value()}")
    print(f"   deliveries     : {benor.steps}\n")

    print("3) Same skeleton, common coin (the paper's coin, as an oracle)")
    coin = run_common_coin_ba(n, inputs, oracle=SeededCoinOracle(4),
                              scheduler=RandomScheduler(4))
    print(f"   agreed value   : {coin.agreement_value()}")
    print(f"   deliveries     : {coin.steps}")
    speedup = benor.steps / max(1, coin.steps)
    print(f"   speedup        : {speedup:.1f}x fewer deliveries\n")

    print("4) Adversarial scheduling: starve processor 0")
    starved = run_common_coin_ba(
        n, inputs, oracle=SeededCoinOracle(4),
        scheduler=TargetedDelayScheduler(victims={0}, seed=4),
    )
    print(f"   agreed value   : {starved.agreement_value()}")
    print(f"   all decided    : {starved.decided_fraction():.0%}")
    print("   safety holds under any fair schedule; only latency moves.")


if __name__ == "__main__":
    main()
