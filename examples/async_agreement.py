#!/usr/bin/env python
"""Asynchronous agreement, engine edition: the open problem as scenarios.

King & Saia close with: "Can we adapt our results to the asynchronous
communication model?"  The library's asynchronous substrate now runs
behind the same engine seam as everything else: each protocol is a
registered *scenario* (``bracha-broadcast``, ``async-benor``,
``common-coin-ba``) whose trials execute on the ``async`` backend —
many independent :class:`~repro.asynchrony.scheduler.AsyncNetwork`
instances multiplexed breadth-first over delivery steps, with each
trial's scheduler and coins forked deterministically from the spec's
master seed.

The experiment itself is the paper's point in miniature:

1. Bracha reliable broadcast — already Theta(n^2) messages per use.
2. Ben-Or agreement with *local* coins — safe, but slow on split inputs.
3. The same skeleton with a *common* coin — fast, which is exactly what
   the paper's global coin subsequence provides synchronously.
   Generating such a coin asynchronously in o(n^2) bits is the open
   problem.
4. The hybrid backend: the same common-coin sweep at 64 trials, sharded
   in waves across pool workers (each worker rebuilds the scenario by
   name and drives a local async step loop) — bit-identical results,
   measured wall-clock speedup.

Run:  python examples/async_agreement.py
"""

import os

from repro.engine import Engine, ExperimentSpec, HybridBackend


def run(name: str, n: int, trials: int = 8, **params):
    """One scenario on the async backend, checked against serial."""
    spec = ExperimentSpec(
        runner=name, n=n, trials=trials, seed=4, params=params
    )
    stepped = Engine("async").run(spec)
    serial = Engine("serial").run(spec)
    assert stepped.trials == serial.trials, f"{name} diverged from serial"
    return stepped


def main():
    n = 8
    print(f"Asynchronous model as engine scenarios, n = {n}")
    print("(every result below is bit-identical on the serial backend)\n")

    print("1) bracha-broadcast — dealer 0 sends 42, 8 seeds")
    bracha = run("bracha-broadcast", n)
    print(bracha.to_table().to_text())

    print("\n2) async-benor — local coins, split inputs")
    benor = run("async-benor", n, inputs="split", scheduler="random")
    print(benor.to_table().to_text())

    print("\n3) common-coin-ba — same skeleton, common coin oracle")
    coin = run("common-coin-ba", n, inputs="split", scheduler="random")
    print(coin.to_table().to_text())

    benor_steps = benor.summary("steps").mean
    coin_steps = coin.summary("steps").mean
    speedup = benor_steps / max(1.0, coin_steps)
    print(
        f"\nmean deliveries: {benor_steps:.0f} (local coins) vs "
        f"{coin_steps:.0f} (common coin)"
    )
    print(f"speedup        : {speedup:.1f}x fewer deliveries")
    print(
        "safety holds under any fair schedule; the common coin buys "
        "liveness — asynchronously it still costs Omega(n^2) bits, "
        "which is the open problem."
    )

    print("\n4) hybrid backend — the same sweep, 64 trials, sharded "
          "across process workers")
    sweep = ExperimentSpec(
        runner="common-coin-ba", n=n, trials=64, seed=4,
        params={"inputs": "split", "scheduler": "random"},
    )
    serial = Engine("serial").run(sweep)
    hybrid = Engine(HybridBackend(workers=2, wave_size=16)).run(sweep)
    assert hybrid.trials == serial.trials, "hybrid diverged from serial"
    wall = serial.elapsed_seconds / max(hybrid.elapsed_seconds, 1e-9)
    cores = os.cpu_count() or 1
    print(f"  serial : {serial.elapsed_seconds:.3f}s")
    print(f"  hybrid : {hybrid.elapsed_seconds:.3f}s "
          "(2 workers, waves of 16)")
    print(f"  measured wall-clock speedup : {wall:.2f}x on "
          f"{cores} core(s) — results bit-identical either way "
          "(workers rebuild the scenario by name, so backend choice "
          "is pure scheduling; the ratio scales with real cores)")


if __name__ == "__main__":
    main()
