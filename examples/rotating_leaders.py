#!/usr/bin/env python
"""Scenario: rotating view leaders for a replicated log.

Leader-based replication (PBFT-style view changes, the intro's replica-
synchronization motivation) needs a leader every round — and an adaptive
adversary makes a one-off leader election worthless, because it corrupts
whoever wins.  This example draws a *rotation* of leaders from the
tournament's global coin subsequence: every draw is uniform and becomes
visible to the adversary only when it becomes visible to everyone, so
corruption always lands after the fact.

The second half plays the ablation: the instant-takeover regime
(equivalent to electing processors, as in the non-adaptive predecessor
[17]) loses every targeted round, while a one-round takeover lag — the
synchronous reality — costs the adversary its whole budget for nothing.

Run:  python examples/rotating_leaders.py
"""

import random

from repro.adversary.adaptive import GreedyElectionAdversary
from repro.core.global_coin import synthetic_subsequence
from repro.core.leader_election import (
    leader_schedule,
    run_leader_election,
    schedule_under_attack,
)


def main():
    n = 27
    views = 4
    budget = max(1, n // 10)

    print(f"replicated service, {n} replicas, {views} views to schedule,")
    print(f"adaptive adversary holding a budget of {budget}\n")

    adversary = GreedyElectionAdversary(n, budget=budget, seed=61)
    schedule = run_leader_election(
        n, schedule_length=views, adversary=adversary, seed=62
    )
    print(f"view leaders           : {schedule.leaders}")
    print(f"good at draw time      : {schedule.good_fraction():.0%}")
    print(f"weakest-draw agreement : {schedule.min_agreement():.0%}\n")

    # The ablation, at a size where the averages are visible: 300
    # processors, 40 views, 10% corrupt, adversary kills leaders on sight.
    big_n, rounds = 300, 40
    rng = random.Random(63)
    coin = synthetic_subsequence(
        big_n, length=rounds, good_indices=range(rounds), rng=rng
    )
    coin.corrupted = set(rng.sample(range(big_n), big_n // 10))
    rotation = leader_schedule(coin, big_n, count=rounds)

    print(f"ablation at n={big_n}, {rounds} views, 10% corrupt,")
    print("adversary corrupts each sitting leader on sight:")
    for delay, label in ((0, "instant takeover (processor election)"),
                         (1, "one-round takeover lag (rotation)")):
        outcome = schedule_under_attack(
            rotation, budget=rounds, takeover_delay=delay
        )
        print(
            f"  {label:<38}: "
            f"{outcome.useful_good_fraction():.0%} of views keep a good "
            f"leader"
        )
    print()
    print("Rotation turns adaptivity into a budget drain: by the time a")
    print("takeover lands, the victim's view is already over.")


if __name__ == "__main__":
    main()
