#!/usr/bin/env python
"""Engine sweep: one experiment spec, three execution backends.

The :mod:`repro.engine` subsystem expresses a Monte-Carlo experiment as
data (an :class:`ExperimentSpec`) and executes it on pluggable backends:
serial, a sharded process pool, and a batch backend that multiplexes
independent protocol instances over one simulated round loop.  Because
every trial's seed derives from the spec alone, all backends return
bit-identical results — this script proves it, then prints the
aggregated table the CLI (`python -m repro run-experiment`) shows.

Run:  python examples/engine_sweep.py
"""

from repro.engine import Engine, ExperimentSpec


def main():
    spec = ExperimentSpec(
        runner="vss-coin",
        n=7,
        trials=12,
        seed=42,
        params={"k": 7, "adversary": "withhold"},
    )
    print(f"spec: {spec.describe()}\n")

    results = {
        name: Engine(name).run(spec) for name in ("serial", "batch", "process")
    }
    serial = results["serial"]
    for name, result in results.items():
        identical = result.trials == serial.trials
        print(
            f"{name:>8}: {result.elapsed_seconds:6.2f}s, "
            f"{result.failure_count} failures, "
            f"bit-identical to serial: {identical}"
        )
        assert identical, f"{name} diverged from serial"

    print()
    print(serial.to_table(title="aggregated (any backend)").to_text())
    coins = serial.metric_values("coin")
    print(f"coin values across trials: {[int(c) for c in coins]}")
    print("all backends agree")


if __name__ == "__main__":
    main()
