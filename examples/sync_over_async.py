#!/usr/bin/env python
"""Running legacy synchronous protocols on an asynchronous network.

Deployments rarely get the synchronous rounds the paper assumes — this
example shows what the library's round synchronizer can (and cannot)
recover:

1. Phase King — the classic synchronous O(n²) protocol — runs unchanged
   over the asynchronous engine and agrees, but the synchronizer's
   marker envelopes cost n(n-1) messages per simulated round: generic
   synchronization re-imposes the quadratic floor, which is why the
   paper's asynchronous adaptation is an open problem rather than an
   engineering exercise.
2. The VSS committee coin (the on-demand alternative to the paper's
   elected-array randomness) also runs synchronously; we toss a few
   coins and show member agreement plus the Θ(k²)-per-coin price the
   tournament's amortization avoids.

Run:  python examples/sync_over_async.py
"""

from repro.asynchrony import (
    RandomScheduler,
    run_synchronized,
    synchronizer_overhead_messages,
)
from repro.baselines.phase_king import (
    PhaseKingProcessor,
    phase_king_fault_bound,
)
from repro.core.vss_coin import CoinCostModel, run_vss_coin


def main():
    n = 8
    inputs = [i % 2 for i in range(n)]
    phases = phase_king_fault_bound(n) + 1

    print(f"1) Phase King (synchronous) over the async engine, n = {n}")
    protocols = [
        PhaseKingProcessor(pid, n, inputs[pid], num_phases=phases)
        for pid in range(n)
    ]
    result, wrappers = run_synchronized(
        protocols, max_rounds=2 * phases + 2,
        scheduler=RandomScheduler(3), fault_bound=0,
    )
    rounds = max(w.rounds_simulated for w in wrappers)
    print(f"   agreed value     : {result.agreement_value()}")
    print(f"   rounds simulated : {rounds}")
    print(f"   messages         : {result.ledger.total_messages()} "
          f"(synchronizer floor: "
          f"{synchronizer_overhead_messages(n, rounds)})")
    print("   => correct, but quadratic: the synchronizer cannot save "
          "the paper's o(n^2) budget.\n")

    k = 7
    print(f"2) On-demand VSS committee coin, k = {k}")
    for seed in range(4):
        toss = run_vss_coin(k=k, seed=seed)
        coins = set(toss.good_outputs().values())
        print(f"   toss {seed}: coin = {coins.pop()}  "
              f"(members agree: {len(coins) == 0})")
    model = CoinCostModel(k)
    print(f"   cost: {model.vss_bits_per_member():,} bits/member/coin; "
          f"the tournament amortizes to "
          f"{model.paper_amortized_bits_per_member(100):,.0f} "
          f"bits/member over 100 coins.")


if __name__ == "__main__":
    main()
