#!/usr/bin/env python
"""Why the paper's guarantees look the way they do: two live attacks.

1. Dolev-Reischuk corollary (paper Section 1): a protocol that always
   sends o(n^2) messages must err with positive probability.  We run a
   cheap sampled-majority protocol that is correct w.h.p. against an
   oblivious adversary, then hand the adversary the victim's coins — it
   corrupts exactly the victim's sample and flips it deterministically.

2. Holtby-Kapron-King (paper Section 2, [14]): pre-specify who you
   listen to and an adaptive adversary can surround you unless you
   listen widely (Omega(n^{1/3}) messages).  We sweep the listen degree
   across the isolation cliff.

King & Saia's protocol answers both: it accepts a 1/n^c error
probability (attack 1 is unavoidable below n^2), and its Algorithm 3
acts on counts of received values rather than pre-specified listener
sets (escaping attack 2's model).

Run:  python examples/lower_bound_attack.py
"""

from repro.lowerbounds import (
    guessing_attack_demo,
    isolation_attack_demo,
    isolation_threshold,
)


def main():
    n = 90
    print(f"Attack 1: coin guessing vs sampled-majority BA (n = {n})")
    outcome = guessing_attack_demo(n=n, seed=1)
    print(f"   sample size        : {outcome.sample_size} peers "
          f"(~3 ln n)")
    print(f"   total messages     : {outcome.total_messages} "
          f"(n^2 = {n * n})")
    print(f"   oblivious adversary: {outcome.oblivious_wrong} "
          f"processors flipped")
    print(f"   coin-guessing      : victim decided "
          f"{outcome.guessing_victim_output} "
          f"(inputs all {outcome.majority_input}) -> "
          f"{'ATTACK SUCCEEDED' if outcome.attack_succeeded else 'survived'}")
    print("   => below n^2 messages, some error probability is "
          "unavoidable.\n")

    budget, rounds = 12, 3
    cliff = isolation_threshold(budget, rounds)
    print(f"Attack 2: isolation in the pre-specified-listener model "
          f"(n = {n}, budget {budget}, {rounds} gossip rounds, "
          f"cliff at degree {cliff})")
    for degree in (2, cliff, cliff + 2, 3 * cliff):
        result = isolation_attack_demo(
            n=n, listen_degree=degree, gossip_rounds=rounds,
            budget=budget, seed=3,
        )
        status = "ISOLATED" if result.victim_isolated else "safe"
        print(f"   degree {degree:>2}: victim {status:>8}  "
              f"(corruptions used: {result.corruptions_used})")
    print("   => listen narrowly and you can be surrounded; Algorithm 3 "
          "instead accepts values by received-count, outside this model.")


if __name__ == "__main__":
    main()
